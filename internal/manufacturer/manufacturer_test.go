package manufacturer

import (
	"bytes"
	"crypto/ecdh"
	"crypto/rand"
	"errors"
	"testing"

	"salus/internal/bitstream"
	"salus/internal/cryptoutil"
	"salus/internal/fpga"
	"salus/internal/netlist"
	"salus/internal/sgx"
)

func newService(t testing.TB) *Service {
	t.Helper()
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func smImage() sgx.EnclaveImage {
	return sgx.EnclaveImage{Name: "salus-sm", Version: 1, Code: []byte("sm app binary")}
}

// smQuote builds an SM-enclave quote carrying an ephemeral X25519 key, as
// the real SM application does when requesting a device key.
func smQuote(t testing.TB, s *Service) (sgx.Quote, *ecdh.PrivateKey) {
	t.Helper()
	platform, err := sgx.NewPlatform(s.Authority())
	if err != nil {
		t.Fatal(err)
	}
	enclave := platform.Load(smImage())
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	var data [sgx.ReportDataSize]byte
	copy(data[:32], priv.PublicKey().Bytes())
	return enclave.Quote(data), priv
}

func TestManufactureDeviceFusesAndRegisters(t *testing.T) {
	s := newService(t)
	dev, err := s.ManufactureDevice(netlist.TestDevice, "A58275817")
	if err != nil {
		t.Fatal(err)
	}
	if dev.DNA() != "A58275817" {
		t.Errorf("DNA = %s", dev.DNA())
	}
	if err := dev.FuseKey([]byte{1}); err == nil {
		t.Error("device left unfused by manufacturing")
	}
	if _, err := s.ManufactureDevice(netlist.TestDevice, "A58275817"); err == nil {
		t.Error("accepted duplicate DNA")
	}
}

func TestKeyDistributionEndToEnd(t *testing.T) {
	s := newService(t)
	dev, err := s.ManufactureDevice(netlist.TestDevice, "A58275817")
	if err != nil {
		t.Fatal(err)
	}
	s.TrustSMEnclave(smImage().Measure())
	quote, priv := smQuote(t, s)

	resp, err := s.RequestDeviceKey(quote, "A58275817")
	if err != nil {
		t.Fatal(err)
	}
	key, err := OpenKeyResponse(priv, "A58275817", resp)
	if err != nil {
		t.Fatal(err)
	}
	// The recovered key must actually decrypt bitstreams the device
	// accepts: round-trip through a trivial container.
	if len(key) != cryptoutil.DeviceKeySize {
		t.Fatalf("key size = %d", len(key))
	}
	d := &netlist.Design{Name: "cl", Modules: []netlist.ModuleSpec{{
		Name: "m", Res: netlist.Resources{LUT: 1, Register: 1, BRAM: 1},
		Cells: []netlist.BRAMCell{{Name: "c"}},
	}}}
	pl, err := netlist.Implement(d, netlist.TestDevice, 1)
	if err != nil {
		t.Fatal(err)
	}
	enc := bitstream.FromPlaced(pl, "kd-test").Encode()
	sealed, err := bitstream.Encrypt(enc, key, netlist.TestDevice.Name)
	if err != nil {
		t.Fatal(err)
	}
	// The device's internal decryptor must accept what the distributed key
	// encrypted.
	if err := dev.ICAP().Program(sealed); err != nil {
		t.Fatalf("device rejected bitstream encrypted under distributed key: %v", err)
	}
}

type nopCL struct{}

func (nopCL) LogicID() string                            { return "kd-test" }
func (nopCL) HandleTransaction(r []byte) ([]byte, error) { return r, nil }

func init() {
	fpga.RegisterLogic("kd-test", func(fpga.CLConfig) (fpga.CL, error) { return nopCL{}, nil })
}

func TestKeyRequestRejectsUnknownDevice(t *testing.T) {
	s := newService(t)
	s.TrustSMEnclave(smImage().Measure())
	quote, _ := smQuote(t, s)
	if _, err := s.RequestDeviceKey(quote, "NOPE"); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("err = %v, want ErrUnknownDevice", err)
	}
}

func TestKeyRequestRejectsUntrustedMeasurement(t *testing.T) {
	s := newService(t)
	if _, err := s.ManufactureDevice(netlist.TestDevice, "D1"); err != nil {
		t.Fatal(err)
	}
	quote, _ := smQuote(t, s) // measurement never whitelisted
	if _, err := s.RequestDeviceKey(quote, "D1"); !errors.Is(err, ErrUnknownEnclave) {
		t.Errorf("err = %v, want ErrUnknownEnclave", err)
	}
}

func TestKeyRequestRejectsForeignQuote(t *testing.T) {
	s := newService(t)
	if _, err := s.ManufactureDevice(netlist.TestDevice, "D1"); err != nil {
		t.Fatal(err)
	}
	s.TrustSMEnclave(smImage().Measure())

	// Quote from a platform provisioned under a different authority.
	other := newService(t)
	quote, _ := smQuote(t, other)
	if _, err := s.RequestDeviceKey(quote, "D1"); !errors.Is(err, ErrUntrustedQuote) {
		t.Errorf("err = %v, want ErrUntrustedQuote", err)
	}
}

func TestKeyRequestRejectsTamperedReportData(t *testing.T) {
	s := newService(t)
	if _, err := s.ManufactureDevice(netlist.TestDevice, "D1"); err != nil {
		t.Fatal(err)
	}
	s.TrustSMEnclave(smImage().Measure())
	quote, _ := smQuote(t, s)
	// A MITM swapping the ECDH key in report data breaks the quote
	// signature.
	quote.ReportData[0] ^= 1
	if _, err := s.RequestDeviceKey(quote, "D1"); !errors.Is(err, ErrUntrustedQuote) {
		t.Errorf("err = %v, want ErrUntrustedQuote", err)
	}
}

func TestKeyResponseConfidentiality(t *testing.T) {
	s := newService(t)
	if _, err := s.ManufactureDevice(netlist.TestDevice, "D1"); err != nil {
		t.Fatal(err)
	}
	s.TrustSMEnclave(smImage().Measure())
	quote, priv := smQuote(t, s)
	resp, err := s.RequestDeviceKey(quote, "D1")
	if err != nil {
		t.Fatal(err)
	}
	key, err := OpenKeyResponse(priv, "D1", resp)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(resp.Sealed, key) || bytes.Contains(resp.ServerPub, key) {
		t.Error("device key visible in the wire response")
	}
	// A different private key (an eavesdropper's) cannot open it.
	evil, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenKeyResponse(evil, "D1", resp); err == nil {
		t.Error("eavesdropper opened the key response")
	}
	// Nor does binding to the wrong DNA pass.
	if _, err := OpenKeyResponse(priv, "D2", resp); err == nil {
		t.Error("response opened under wrong DNA binding")
	}
}

func TestRequestsCounter(t *testing.T) {
	s := newService(t)
	quote, _ := smQuote(t, s)
	s.RequestDeviceKey(quote, "missing")
	s.RequestDeviceKey(quote, "missing")
	if s.Requests() != 2 {
		t.Errorf("requests = %d", s.Requests())
	}
}

func TestTCBRecoveryFloor(t *testing.T) {
	s := newService(t)
	if _, err := s.ManufactureDevice(netlist.TestDevice, "TCB1"); err != nil {
		t.Fatal(err)
	}
	s.TrustSMEnclave(smImage().Measure())
	quote, _ := smQuote(t, s) // version 1
	s.SetMinSMVersion(2)
	if _, err := s.RequestDeviceKey(quote, "TCB1"); !errors.Is(err, ErrOutdatedTCB) {
		t.Errorf("outdated SM build got a key: %v", err)
	}
	s.SetMinSMVersion(1)
	if _, err := s.RequestDeviceKey(quote, "TCB1"); err != nil {
		t.Errorf("patched floor rejected a current build: %v", err)
	}
}

func TestDebugEnclaveRefused(t *testing.T) {
	s := newService(t)
	if _, err := s.ManufactureDevice(netlist.TestDevice, "DBG1"); err != nil {
		t.Fatal(err)
	}
	img := sgx.EnclaveImage{Name: "salus-sm", Version: 1, Debug: true, Code: []byte("sm app binary")}
	s.TrustSMEnclave(img.Measure())
	platform, err := sgx.NewPlatform(s.Authority())
	if err != nil {
		t.Fatal(err)
	}
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	var data [sgx.ReportDataSize]byte
	copy(data[:32], priv.PublicKey().Bytes())
	quote := platform.Load(img).Quote(data)
	if _, err := s.RequestDeviceKey(quote, "DBG1"); !errors.Is(err, ErrDebugEnclave) {
		t.Errorf("debug enclave got a key: %v", err)
	}
}

func TestRevokedPlatformGetsNoKeys(t *testing.T) {
	s := newService(t)
	if _, err := s.ManufactureDevice(netlist.TestDevice, "REV1"); err != nil {
		t.Fatal(err)
	}
	s.TrustSMEnclave(smImage().Measure())
	platform, err := sgx.NewPlatform(s.Authority())
	if err != nil {
		t.Fatal(err)
	}
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	var data [sgx.ReportDataSize]byte
	copy(data[:32], priv.PublicKey().Bytes())
	quote := platform.Load(smImage()).Quote(data)
	if _, err := s.RequestDeviceKey(quote, "REV1"); err != nil {
		t.Fatalf("healthy platform refused: %v", err)
	}
	s.Authority().RevokePlatform(platform.PlatformPublicKey())
	if _, err := s.RequestDeviceKey(quote, "REV1"); !errors.Is(err, ErrUntrustedQuote) {
		t.Errorf("revoked platform served: %v", err)
	}
}
