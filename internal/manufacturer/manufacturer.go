// Package manufacturer implements the hardware manufacturer's side of
// Salus (§4.1): it manufactures devices (injecting a random symmetric
// device key into each FPGA's eFUSE), maintains the DeviceDNA → Key_device
// distribution service, and releases a device key only to a remotely
// attested SM enclave (Figure 3, step ④). The paper assigns this trusted
// third-party role to the manufacturer because it already plays it for CPU
// TEEs (Intel Attestation Service) and FPGA key provisioning.
package manufacturer

import (
	"crypto/ecdh"
	"crypto/rand"
	"errors"
	"fmt"
	"sync"

	"salus/internal/cryptoutil"
	"salus/internal/fpga"
	"salus/internal/netlist"
	"salus/internal/sgx"
)

// Errors.
var (
	ErrUnknownDevice  = errors.New("manufacturer: unknown device DNA")
	ErrUntrustedQuote = errors.New("manufacturer: quote verification failed")
	ErrUnknownEnclave = errors.New("manufacturer: enclave measurement not on the trusted SM list")
	ErrOutdatedTCB    = errors.New("manufacturer: SM enclave version below TCB recovery floor")
	ErrDebugEnclave   = errors.New("manufacturer: debug enclaves are not issued device keys")
)

// KeyResponse carries an encrypted device key back to the SM enclave: the
// server's ephemeral ECDH public key and the key sealed under the derived
// channel secret.
type KeyResponse struct {
	ServerPub []byte
	Sealed    []byte
}

// Service is the manufacturer: provisioning authority, device factory, and
// key distribution server in one trust domain.
type Service struct {
	pa *sgx.ProvisioningAuthority

	mu           sync.Mutex
	devices      map[fpga.DNA][]byte
	trustedSM    map[sgx.Measurement]bool
	minSMVersion uint16
	requests     int
}

// New creates the manufacturer service with its own provisioning authority
// root.
func New() (*Service, error) {
	pa, err := sgx.NewProvisioningAuthority()
	if err != nil {
		return nil, err
	}
	return &Service{
		pa:        pa,
		devices:   make(map[fpga.DNA][]byte),
		trustedSM: make(map[sgx.Measurement]bool),
	}, nil
}

// Authority exposes the provisioning authority for platform provisioning —
// the manufacturing-time trust relationship between CPU platforms and the
// attestation root.
func (s *Service) Authority() *sgx.ProvisioningAuthority { return s.pa }

// Root returns the quote verification root distributed to all verifiers.
func (s *Service) Root() []byte { return s.pa.PublicKey() }

// ManufactureDevice builds a device with a freshly generated symmetric
// device key fused into its eFUSE and recorded in the distribution
// database.
func (s *Service) ManufactureDevice(profile netlist.DeviceProfile, dna fpga.DNA, opts ...fpga.Option) (*fpga.Device, error) {
	dev, err := fpga.Manufacture(profile, dna, opts...)
	if err != nil {
		return nil, err
	}
	key := cryptoutil.RandomKey(cryptoutil.DeviceKeySize)
	if err := dev.FuseKey(key); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.devices[dna]; exists {
		return nil, fmt.Errorf("manufacturer: DNA %s already manufactured", dna)
	}
	s.devices[dna] = key
	return dev, nil
}

// TrustSMEnclave whitelists an SM enclave measurement. The SM application
// is a manufacturer-released SDK component (§4.1), so the manufacturer
// knows exactly which measurements to expect.
func (s *Service) TrustSMEnclave(m sgx.Measurement) {
	s.mu.Lock()
	s.trustedSM[m] = true
	s.mu.Unlock()
}

// SetMinSMVersion raises the TCB recovery floor: quotes from SM enclave
// builds older than v are refused even if their measurement was once
// trusted — the DCAP "fully patched platform" policy (§2.1).
func (s *Service) SetMinSMVersion(v uint16) {
	s.mu.Lock()
	s.minSMVersion = v
	s.mu.Unlock()
}

// Requests counts key distribution requests served (including rejected
// ones), for the audit trail.
func (s *Service) Requests() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests
}

// RequestDeviceKey serves Figure 3 step ④: the SM enclave asks for the key
// of the FPGA with the given DNA, proving its identity with a quote whose
// report data carries the enclave's ephemeral X25519 public key. The
// manufacturer verifies the quote against its root, checks the measurement
// against the trusted SM list, and returns Key_device sealed under the
// ECDH-derived channel key — it never leaves in plaintext.
func (s *Service) RequestDeviceKey(quote sgx.Quote, dna fpga.DNA) (KeyResponse, error) {
	s.mu.Lock()
	s.requests++
	key, known := s.devices[dna]
	trusted := s.trustedSM[quote.MRENCLAVE]
	minVersion := s.minSMVersion
	s.mu.Unlock()

	if err := sgx.VerifyQuoteWithCRL(s.pa.PublicKey(), s.pa.CRL(), quote); err != nil {
		return KeyResponse{}, fmt.Errorf("%w: %v", ErrUntrustedQuote, err)
	}
	if quote.Debug {
		return KeyResponse{}, ErrDebugEnclave
	}
	if quote.Version < minVersion {
		return KeyResponse{}, fmt.Errorf("%w: version %d < %d", ErrOutdatedTCB, quote.Version, minVersion)
	}
	if !trusted {
		return KeyResponse{}, fmt.Errorf("%w: %s", ErrUnknownEnclave, quote.MRENCLAVE)
	}
	if !known {
		return KeyResponse{}, fmt.Errorf("%w: %s", ErrUnknownDevice, dna)
	}

	curve := ecdh.X25519()
	clientPub, err := curve.NewPublicKey(quote.ReportData[:32])
	if err != nil {
		return KeyResponse{}, fmt.Errorf("manufacturer: bad client key in report data: %w", err)
	}
	serverPriv, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return KeyResponse{}, err
	}
	shared, err := serverPriv.ECDH(clientPub)
	if err != nil {
		return KeyResponse{}, fmt.Errorf("manufacturer: %w", err)
	}
	sealKey := cryptoutil.DeriveKey(shared, "salus/device-key-dist", 32)
	sealed, err := cryptoutil.Seal(sealKey, key, []byte(dna))
	if err != nil {
		return KeyResponse{}, err
	}
	return KeyResponse{ServerPub: serverPriv.PublicKey().Bytes(), Sealed: sealed}, nil
}

// OpenKeyResponse is the client-side counterpart used inside the SM
// enclave: it derives the shared secret with the enclave's ephemeral
// private key and unseals Key_device.
func OpenKeyResponse(clientPriv *ecdh.PrivateKey, dna fpga.DNA, resp KeyResponse) ([]byte, error) {
	serverPub, err := ecdh.X25519().NewPublicKey(resp.ServerPub)
	if err != nil {
		return nil, fmt.Errorf("manufacturer: bad server key: %w", err)
	}
	shared, err := clientPriv.ECDH(serverPub)
	if err != nil {
		return nil, fmt.Errorf("manufacturer: %w", err)
	}
	sealKey := cryptoutil.DeriveKey(shared, "salus/device-key-dist", 32)
	key, err := cryptoutil.Open(sealKey, resp.Sealed, []byte(dna))
	if err != nil {
		return nil, fmt.Errorf("manufacturer: unsealing device key: %w", err)
	}
	return key, nil
}
