// Package remote puts the Salus software stack on real sockets (§5.2,
// Figures 6 and 7): the manufacturer's key-distribution service and the
// cloud instance's attestation/job gateway become RPC servers, and the two
// trusted-side parties — the SM enclave (as key client) and the data owner
// (as verifier) — talk to them over TCP.
//
// The transports are untrusted, exactly as in the paper: every sensitive
// payload that crosses them is independently protected (signed quotes,
// ECDH-sealed keys, AES-GCM-sealed job data), so a man in the middle can
// disrupt but never read or forge.
package remote

import (
	"errors"
	"fmt"
	"sync"

	"salus/internal/client"
	"salus/internal/core"
	"salus/internal/cryptoutil"
	"salus/internal/fpga"
	"salus/internal/manufacturer"
	"salus/internal/rpc"
	"salus/internal/sgx"
)

// --- Manufacturer service ----------------------------------------------------

// KeyRequest is the wire form of a device-key request.
type KeyRequest struct {
	Quote sgx.Quote `json:"quote"`
	DNA   string    `json:"dna"`
}

// ServeManufacturer exposes the key-distribution service on addr
// (use "127.0.0.1:0" to pick a free port). It returns the server handle
// and the bound address.
func ServeManufacturer(svc *manufacturer.Service, addr string) (*rpc.Server, string, error) {
	srv := rpc.NewServer()
	srv.Handle("Manufacturer.RequestDeviceKey", rpc.Typed(func(in KeyRequest) (manufacturer.KeyResponse, error) {
		return svc.RequestDeviceKey(in.Quote, fpga.DNA(in.DNA))
	}))
	srv.Handle("Manufacturer.Root", rpc.Typed(func(struct{}) ([]byte, error) {
		return svc.Root(), nil
	}))
	bound, err := srv.Listen(addr)
	if err != nil {
		return nil, "", err
	}
	return srv, bound, nil
}

// KeyClient is the SM enclave's view of a remote manufacturer. It
// implements smapp.KeyService, and it survives transient transport
// failures: on a network error it re-dials and retries (application-level
// rejections — wrong device, untrusted quote — are never retried).
type KeyClient struct {
	addr    string
	retries int

	mu sync.Mutex
	c  *rpc.Client
}

// DialManufacturer connects to a manufacturer server.
func DialManufacturer(addr string) (*KeyClient, error) {
	c, err := rpc.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("remote: manufacturer: %w", err)
	}
	return &KeyClient{addr: addr, retries: 3, c: c}, nil
}

// call performs one RPC with redial-and-retry on transport failures.
func (k *KeyClient) call(method string, params, result any) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	var err error
	for attempt := 0; attempt <= k.retries; attempt++ {
		if k.c == nil {
			k.c, err = rpc.Dial(k.addr)
			if err != nil {
				continue // server may be coming back
			}
		}
		//lint:allow lock-across-block the owner key client serialises RPCs by design: k.mu is the single-outstanding-call queue, and redial replaces k.c under the same lock
		err = k.c.Call(method, params, result)
		if err == nil {
			return nil
		}
		var srvErr *rpc.ServerError
		if errors.As(err, &srvErr) {
			return err // deliberate rejection: retrying cannot help
		}
		// Transport failure: drop the connection and redial.
		k.c.Close()
		k.c = nil
	}
	return fmt.Errorf("remote: manufacturer unreachable after %d attempts: %w", k.retries+1, err)
}

// RequestDeviceKey implements smapp.KeyService over the wire.
func (k *KeyClient) RequestDeviceKey(quote sgx.Quote, dna fpga.DNA) (manufacturer.KeyResponse, error) {
	var resp manufacturer.KeyResponse
	err := k.call("Manufacturer.RequestDeviceKey", KeyRequest{Quote: quote, DNA: string(dna)}, &resp)
	return resp, err
}

// Root fetches the provisioning-authority root over the wire. Note: a real
// verifier obtains the root out of band (it IS the trust anchor); this
// endpoint exists for tooling convenience only.
func (k *KeyClient) Root() ([]byte, error) {
	var root []byte
	err := k.call("Manufacturer.Root", struct{}{}, &root)
	return root, err
}

// Close releases the connection.
func (k *KeyClient) Close() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.c == nil {
		return nil
	}
	err := k.c.Close()
	k.c = nil
	return err
}

// --- Cloud instance gateway -----------------------------------------------------

// BootRequest carries the data owner's RA challenge.
type BootRequest struct {
	Nonce []byte `json:"nonce"`
}

// BootResponse carries the deferred cascaded-attestation quote.
type BootResponse struct {
	Quote sgx.Quote `json:"quote"`
}

// ProvisionRequest carries the sealed data key.
type ProvisionRequest struct {
	SenderPub []byte `json:"sender_pub"`
	Sealed    []byte `json:"sealed"`
}

// JobRequest carries one sealed job.
type JobRequest struct {
	Kernel      string    `json:"kernel"`
	Params      [4]uint64 `json:"params"`
	SealedInput []byte    `json:"sealed_input"`
	// QoS fields, used by the cluster gateway (see ClusterSession.SetQoS);
	// all optional — empty means anonymous tenant, ClassStandard, no
	// deadline. The instance gateway ignores them.
	Tenant         string `json:"tenant,omitempty"`
	Class          string `json:"class,omitempty"`
	DeadlineMillis int64  `json:"deadline_ms,omitempty"`
}

// JobResponse carries the sealed result.
type JobResponse struct {
	SealedOutput []byte `json:"sealed_output"`
}

// ServeInstance exposes a deployment's boot/provision/job gateway on addr.
// The gateway itself is untrusted plumbing (it runs outside the enclaves,
// like the RPC modules in Figure 7); everything it relays is protected end
// to end.
func ServeInstance(sys *core.System, addr string) (*rpc.Server, string, error) {
	srv := rpc.NewServer()
	// RPC handlers run concurrently; boot-path mutations of the system are
	// serialised here (the job path has its own per-system lock).
	var bootMu sync.Mutex
	srv.Handle("Instance.Boot", rpc.Typed(func(in BootRequest) (BootResponse, error) {
		bootMu.Lock()
		defer bootMu.Unlock()
		q, err := sys.BootAndQuote(in.Nonce)
		if err != nil {
			return BootResponse{}, err
		}
		return BootResponse{Quote: q}, nil
	}))
	srv.Handle("Instance.Provision", rpc.Typed(func(in ProvisionRequest) (struct{}, error) {
		bootMu.Lock()
		defer bootMu.Unlock()
		return struct{}{}, sys.FinishProvision(in.SenderPub, in.Sealed)
	}))
	srv.Handle("Instance.RunJob", rpc.Typed(func(in JobRequest) (JobResponse, error) {
		out, err := sys.RunJobSealed(in.Kernel, in.Params, in.SealedInput)
		if err != nil {
			return JobResponse{}, err
		}
		return JobResponse{SealedOutput: out}, nil
	}))
	bound, err := srv.Listen(addr)
	if err != nil {
		return nil, "", err
	}
	return srv, bound, nil
}

// Session is the data owner's remote session with a cloud instance: it
// attests the platform across the network and then submits sealed jobs.
type Session struct {
	c       *rpc.Client
	exp     client.Expectations
	dataKey []byte
}

// DialInstance opens a session toward an instance gateway, pinning the
// expectations the owner verified out of band (developer-published H and
// measurements, CSP-assigned DNA, manufacturer root).
func DialInstance(addr string, exp client.Expectations) (*Session, error) {
	c, err := rpc.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("remote: instance: %w", err)
	}
	return &Session{c: c, exp: exp}, nil
}

// Attest runs the cascaded attestation over the wire: fresh nonce, remote
// boot, local verification of the deferred quote, and data-key
// provisioning. Only after this returns nil does the owner's data flow.
func (s *Session) Attest() error {
	ver := client.New(s.exp)
	nonce := ver.NewNonce()
	var boot BootResponse
	if err := s.c.Call("Instance.Boot", BootRequest{Nonce: nonce}, &boot); err != nil {
		return fmt.Errorf("remote: boot: %w", err)
	}
	dataPub, err := ver.VerifyRAResponse(nonce, boot.Quote)
	if err != nil {
		return err
	}
	s.dataKey = cryptoutil.RandomKey(16)
	senderPub, sealed, err := client.ProvisionDataKey(dataPub, s.dataKey)
	if err != nil {
		return err
	}
	if err := s.c.Call("Instance.Provision", ProvisionRequest{SenderPub: senderPub, Sealed: sealed}, nil); err != nil {
		return fmt.Errorf("remote: provision: %w", err)
	}
	return nil
}

// RunJob seals the plaintext input under the session's data key, submits
// it, and opens the sealed result.
func (s *Session) RunJob(kernel string, params [4]uint64, input []byte) ([]byte, error) {
	if s.dataKey == nil {
		return nil, fmt.Errorf("remote: session not attested")
	}
	sealedIn, err := cryptoutil.Seal(s.dataKey, input, []byte("job-input"))
	if err != nil {
		return nil, err
	}
	var resp JobResponse
	if err := s.c.Call("Instance.RunJob", JobRequest{Kernel: kernel, Params: params, SealedInput: sealedIn}, &resp); err != nil {
		return nil, err
	}
	out, err := cryptoutil.Open(s.dataKey, resp.SealedOutput, []byte("job-output"))
	if err != nil {
		return nil, fmt.Errorf("remote: sealed output rejected: %w", err)
	}
	return out, nil
}

// Close releases the session.
func (s *Session) Close() error { return s.c.Close() }
