package remote

import (
	"bytes"
	"fmt"
	"testing"

	"salus/internal/accel"
	"salus/internal/client"
	"salus/internal/core"
	"salus/internal/cryptoutil"
	"salus/internal/fpga"
	"salus/internal/manufacturer"
	"salus/internal/rpc"
	"salus/internal/sched"
	"salus/internal/sgx"
)

// deployment spins up a full networked deployment: manufacturer RPC server,
// a system whose SM enclave fetches keys over TCP, and the instance gateway.
type deployment struct {
	sys          *core.System
	instanceAddr string
}

func newDeployment(t testing.TB, kernel accel.Kernel) *deployment {
	t.Helper()
	mfr, err := manufacturer.New()
	if err != nil {
		t.Fatal(err)
	}
	mfrSrv, mfrAddr, err := ServeManufacturer(mfr, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mfrSrv.Close() })

	kc, err := DialManufacturer(mfrAddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { kc.Close() })

	sys, err := core.NewSystem(core.SystemConfig{
		Kernel:       kernel,
		Seed:         3,
		Manufacturer: mfr,
		KeyService:   kc,
	})
	if err != nil {
		t.Fatal(err)
	}
	instSrv, instAddr, err := ServeInstance(sys, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { instSrv.Close() })
	return &deployment{sys: sys, instanceAddr: instAddr}
}

func TestNetworkedAttestAndRunJob(t *testing.T) {
	d := newDeployment(t, accel.Conv{})

	sess, err := DialInstance(d.instanceAddr, d.sys.Expectations())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Attest(); err != nil {
		t.Fatal(err)
	}
	if !d.sys.Booted() {
		t.Error("instance not booted after remote attestation")
	}

	w, _ := accel.TestWorkload("Conv", 11)
	out, err := sess.RunJob("Conv", w.Params, w.Input)
	if err != nil {
		t.Fatal(err)
	}
	want, err := w.Kernel.Compute(w.Params, w.Input)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want) {
		t.Error("remote job result differs from local compute")
	}
}

func TestRunJobRequiresAttestation(t *testing.T) {
	d := newDeployment(t, accel.Conv{})
	sess, err := DialInstance(d.instanceAddr, d.sys.Expectations())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	w, _ := accel.TestWorkload("Conv", 1)
	if _, err := sess.RunJob("Conv", w.Params, w.Input); err == nil {
		t.Error("job ran without attestation")
	}
}

func TestAttestRejectsWrongExpectations(t *testing.T) {
	d := newDeployment(t, accel.Conv{})
	exp := d.sys.Expectations()
	exp.Digest[0] ^= 1 // owner expects a different bitstream
	sess, err := DialInstance(d.instanceAddr, exp)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Attest(); err == nil {
		t.Error("attested a platform with the wrong CL digest")
	}
}

func TestSealedJobDataOpaqueToGateway(t *testing.T) {
	// The gateway (and anything on the TCP path) must never see plaintext
	// job data: seal happens in the owner's session, open inside the user
	// enclave. We check the wire forms directly.
	d := newDeployment(t, accel.Affine{})
	sess, err := DialInstance(d.instanceAddr, d.sys.Expectations())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Attest(); err != nil {
		t.Fatal(err)
	}
	w, _ := accel.TestWorkload("Affine", 4)
	out, err := sess.RunJob("Affine", w.Params, w.Input)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := w.Kernel.Compute(w.Params, w.Input)
	if !bytes.Equal(out, want) {
		t.Error("remote Affine differs")
	}
	// Tampered sealed input is rejected by the enclave.
	bad, err := DialInstance(d.instanceAddr, d.sys.Expectations())
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	// Reuse the attested session's key by sending garbage via raw call.
	if _, err := d.sys.RunJobSealed("Affine", w.Params, []byte("garbage")); err == nil {
		t.Error("enclave accepted tampered sealed input")
	}
}

func TestKeyClientAgainstRealService(t *testing.T) {
	mfr, err := manufacturer.New()
	if err != nil {
		t.Fatal(err)
	}
	srv, addr, err := ServeManufacturer(mfr, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	kc, err := DialManufacturer(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer kc.Close()

	root, err := kc.Root()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(root, mfr.Root()) {
		t.Error("root over the wire differs")
	}
	// Unknown device propagates the error across the wire.
	platform, err := sgx.NewPlatform(mfr.Authority())
	if err != nil {
		t.Fatal(err)
	}
	enclave := platform.Load(sgx.EnclaveImage{Name: "sm", Version: 1, Code: []byte("sm")})
	_, err = kc.RequestDeviceKey(enclave.Quote([sgx.ReportDataSize]byte{}), "NOPE")
	if err == nil {
		t.Error("unknown device accepted over the wire")
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := DialManufacturer("127.0.0.1:1"); err == nil {
		t.Error("dialed a dead port")
	}
	if _, err := DialInstance("127.0.0.1:1", client.Expectations{}); err == nil {
		t.Error("dialed a dead instance port")
	}
}

func TestKeyClientSurvivesServerRestart(t *testing.T) {
	mfr, err := manufacturer.New()
	if err != nil {
		t.Fatal(err)
	}
	srv, addr, err := ServeManufacturer(mfr, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	kc, err := DialManufacturer(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer kc.Close()

	if _, err := kc.Root(); err != nil {
		t.Fatal(err)
	}
	// The server restarts on the same address (a rolling deploy); the
	// client's connection dies mid-session but the next call redials.
	srv.Close()
	srv2, _, err := ServeManufacturer(mfr, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	root, err := kc.Root()
	if err != nil {
		t.Fatalf("call after restart: %v", err)
	}
	if !bytes.Equal(root, mfr.Root()) {
		t.Error("root differs after restart")
	}
}

func TestKeyClientDoesNotRetryRejections(t *testing.T) {
	mfr, err := manufacturer.New()
	if err != nil {
		t.Fatal(err)
	}
	srv, addr, err := ServeManufacturer(mfr, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	kc, err := DialManufacturer(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer kc.Close()
	platform, err := sgx.NewPlatform(mfr.Authority())
	if err != nil {
		t.Fatal(err)
	}
	enclave := platform.Load(sgx.EnclaveImage{Name: "sm", Version: 1, Code: []byte("sm")})
	before := mfr.Requests()
	if _, err := kc.RequestDeviceKey(enclave.Quote([sgx.ReportDataSize]byte{}), "NOPE"); err == nil {
		t.Fatal("unknown device accepted")
	}
	if got := mfr.Requests() - before; got != 1 {
		t.Errorf("rejection retried: %d requests, want 1", got)
	}
}

// clusterDeployment wires a pool: one manufacturer RPC server shared by N
// systems (each its own device/DNA), a scheduler, and the cluster gateway.
type clusterDeployment struct {
	systems []*core.System
	sch     *sched.Scheduler
	srv     *rpc.Server
	addr    string
}

func newClusterDeployment(t testing.TB, n int, kernel accel.Kernel) *clusterDeployment {
	t.Helper()
	return newClusterDeploymentTiming(t, n, kernel, core.Timing{})
}

// newClusterDeploymentTiming is newClusterDeployment with explicit device
// timing (a zero Timing defaults to FastTiming inside core.NewSystem).
func newClusterDeploymentTiming(t testing.TB, n int, kernel accel.Kernel, timing core.Timing, opts ...GatewayOption) *clusterDeployment {
	t.Helper()
	mfr, err := manufacturer.New()
	if err != nil {
		t.Fatal(err)
	}
	mfrSrv, mfrAddr, err := ServeManufacturer(mfr, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mfrSrv.Close() })
	kc, err := DialManufacturer(mfrAddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { kc.Close() })

	systems := make([]*core.System, n)
	for i := range systems {
		systems[i], err = core.NewSystem(core.SystemConfig{
			Kernel:       kernel,
			Seed:         int64(500 + i),
			DNA:          fpga.DNA(fmt.Sprintf("CLUSTER-%02d", i)),
			Manufacturer: mfr,
			KeyService:   kc,
			Timing:       timing,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	sch := sched.New(sched.Config{})
	t.Cleanup(sch.Close)
	srv, addr, err := ServeCluster(systems, sch, "127.0.0.1:0", opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return &clusterDeployment{systems: systems, sch: sch, srv: srv, addr: addr}
}

func (d *clusterDeployment) expectations() []client.Expectations {
	exps := make([]client.Expectations, len(d.systems))
	for i, sys := range d.systems {
		exps[i] = sys.Expectations()
	}
	return exps
}

func TestClusterAttestAndRunJobs(t *testing.T) {
	d := newClusterDeployment(t, 3, accel.Conv{})
	sess, err := DialCluster(d.addr, d.expectations())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Attest(); err != nil {
		t.Fatal(err)
	}
	for i, sys := range d.systems {
		if !sys.Booted() {
			t.Fatalf("device %d not booted after cluster attestation", i)
		}
	}

	const jobs = 6
	for i := 0; i < jobs; i++ {
		w := accel.GenConv(4, 4, 1, int64(i))
		out, err := sess.RunJob("Conv", w.Params, w.Input)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		want, err := w.Kernel.Compute(w.Params, w.Input)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, want) {
			t.Errorf("job %d output diverges from reference", i)
		}
	}

	stats, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, ds := range stats {
		total += ds.Completed
		if ds.Failed != 0 {
			t.Errorf("device %s failed %d jobs", ds.DNA, ds.Failed)
		}
	}
	if total != jobs {
		t.Errorf("cluster completed %d jobs, want %d", total, jobs)
	}
}

func TestClusterAttestAllOrNothing(t *testing.T) {
	// One device's expectations are wrong (foreign DNA): attestation of the
	// pool must fail and NO device may receive the data key.
	d := newClusterDeployment(t, 2, accel.Conv{})
	exps := d.expectations()
	exps[1].DNA = "NOT-THE-DEVICE"
	sess, err := DialCluster(d.addr, exps)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Attest(); err == nil {
		t.Fatal("cluster attested with a mismatched device expectation")
	}
	for i, sys := range d.systems {
		if sys.Booted() {
			t.Errorf("device %d provisioned despite failed pool attestation", i)
		}
	}
	if _, err := sess.RunJob("Conv", [4]uint64{4, 4, 1}, []byte{1, 2, 3, 4}); err == nil {
		t.Error("unattested cluster session ran a job")
	}
}

func TestClusterJobOpaqueToGateway(t *testing.T) {
	// The gateway (and the scheduler behind it) only ever see sealed bytes.
	d := newClusterDeployment(t, 2, accel.Conv{})
	sess, err := DialCluster(d.addr, d.expectations())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Attest(); err != nil {
		t.Fatal(err)
	}
	secret := []byte("column A: patient 4418 positive")
	pad := make([]byte, 64-len(secret)%64)
	w := accel.Workload{Kernel: accel.Conv{}, Params: [4]uint64{4, 4, 2}, Input: append(secret, pad...)}
	sealedIn, err := cryptoutil.Seal(sessKey(sess), w.Input, []byte("job-input"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealedIn, secret) {
		t.Error("sealed job input leaks plaintext")
	}
	if _, err := sess.RunJob("Conv", w.Params, w.Input); err != nil {
		t.Fatal(err)
	}
}

// sessKey exposes the session's provisioned key to the leak test above.
func sessKey(s *ClusterSession) []byte { return s.dataKey }
