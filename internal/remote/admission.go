package remote

import (
	"errors"
	"sync"
	"time"

	"salus/internal/metrics"
	"salus/internal/sched"
)

// Gateway admission metrics.
var (
	mRateLimited = metrics.Default().Counter("salus_remote_rate_limited_total")
	mGatewayShed = metrics.Default().Counter("salus_remote_gateway_shed_total")
)

// Admission rejections are application-level verdicts: the session never
// retries them (the transport is fine), the caller backs off or upgrades
// its class.
var (
	// ErrRateLimited means the tenant exhausted its token bucket.
	ErrRateLimited = errors.New("remote: tenant rate limit exceeded")
	// ErrGatewayOverloaded means the pool's live p99 job latency is past
	// the configured ceiling and non-critical work is being shed.
	ErrGatewayOverloaded = errors.New("remote: gateway overloaded")
)

// AdmissionConfig tunes the gateway's admission screen. The gateway is
// where multi-tenant capacity isolation lives: the scheduler below it
// sees classes, not tenants, so per-tenant fairness has to be enforced
// before work reaches a queue.
type AdmissionConfig struct {
	// TenantRate is the sustained jobs/second each tenant may submit;
	// zero or negative disables rate limiting.
	TenantRate float64
	// TenantBurst is the token-bucket depth (instantaneous burst);
	// defaults to TenantRate when zero.
	TenantBurst float64
	// MaxP99 is the live p99 end-to-end job latency above which
	// non-critical work is shed with ErrGatewayOverloaded; zero or
	// negative disables the cost-aware screen. ClassCritical is exempt —
	// the top band is the one whose latency the shed exists to protect.
	MaxP99 time.Duration
}

// p99CacheTTL bounds how often Admit re-reads the latency histogram; the
// snapshot walks 27 buckets, which is cheap but not per-request cheap.
const p99CacheTTL = 250 * time.Millisecond

// Admission screens gateway job requests with per-tenant token buckets
// and a cost-aware overload shed driven by the metrics registry's live
// p99 job latency. Safe for concurrent use by the RPC handler goroutines.
type Admission struct {
	cfg AdmissionConfig
	// p99 and now are seams for tests; NewAdmission wires them to the
	// process registry and wall clock.
	p99 func() time.Duration
	now func() time.Time

	mu      sync.Mutex
	buckets map[string]*tokenBucket
	cached  time.Duration
	readAt  time.Time
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// NewAdmission builds an admission screen reading the live
// salus_sched_job_seconds p99 from the default metrics registry.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.TenantBurst <= 0 {
		cfg.TenantBurst = cfg.TenantRate
	}
	h := metrics.Default().Histogram("salus_sched_job_seconds")
	return &Admission{
		cfg:     cfg,
		p99:     func() time.Duration { return h.Snapshot().P99 },
		now:     time.Now,
		buckets: make(map[string]*tokenBucket),
	}
}

// Admit screens one request of the given class costing cost jobs.
// Returns nil to admit, ErrRateLimited or ErrGatewayOverloaded to
// reject. Admitted cost is debited from the tenant's bucket.
func (a *Admission) Admit(tenant string, class sched.Class, cost int) error {
	if cost <= 0 {
		cost = 1
	}
	now := a.now()
	a.mu.Lock()
	if a.cfg.TenantRate > 0 {
		b, ok := a.buckets[tenant]
		if !ok {
			b = &tokenBucket{tokens: a.cfg.TenantBurst, last: now}
			a.buckets[tenant] = b
		}
		b.tokens += now.Sub(b.last).Seconds() * a.cfg.TenantRate
		b.last = now
		if b.tokens > a.cfg.TenantBurst {
			b.tokens = a.cfg.TenantBurst
		}
		if b.tokens < float64(cost) {
			a.mu.Unlock()
			mRateLimited.Add(uint64(cost))
			return ErrRateLimited
		}
		b.tokens -= float64(cost)
	}
	overloaded := false
	if a.cfg.MaxP99 > 0 && class < sched.ClassCritical {
		if now.Sub(a.readAt) > p99CacheTTL {
			a.cached = a.p99()
			a.readAt = now
		}
		overloaded = a.cached > a.cfg.MaxP99
	}
	a.mu.Unlock()
	if overloaded {
		mGatewayShed.Add(uint64(cost))
		return ErrGatewayOverloaded
	}
	return nil
}

// GatewayOption configures ServeCluster/ServeFleet.
type GatewayOption func(*gatewayOptions)

type gatewayOptions struct {
	admission *Admission
}

// WithAdmission screens every Cluster.RunJob/RunBatch through adm before
// it reaches the scheduler.
func WithAdmission(adm *Admission) GatewayOption {
	return func(o *gatewayOptions) { o.admission = adm }
}
