package remote

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"salus/internal/accel"
	"salus/internal/core"
	"salus/internal/sched"
)

// setRedialSchedule compresses (or stretches) the session redial policy
// for one test and restores it afterwards.
func setRedialSchedule(t *testing.T, attempts int, base, max time.Duration) {
	t.Helper()
	oldA, oldB, oldM := clusterRedialAttempts, clusterRedialBase, clusterRedialMax
	clusterRedialAttempts, clusterRedialBase, clusterRedialMax = attempts, base, max
	t.Cleanup(func() {
		clusterRedialAttempts, clusterRedialBase, clusterRedialMax = oldA, oldB, oldM
	})
}

// TestClusterRedialBackoffCapped: against a gateway that never comes
// back, the redial backoff must stop doubling at the cap — six attempts
// at base 20 ms spend ~180 ms capped vs ~620 ms uncapped.
func TestClusterRedialBackoffCapped(t *testing.T) {
	setRedialSchedule(t, 6, 20*time.Millisecond, 40*time.Millisecond)
	d := newClusterDeployment(t, 1, accel.Conv{})
	sess, err := DialCluster(d.addr, d.expectations())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Attest(); err != nil {
		t.Fatal(err)
	}
	d.srv.Close() // the gateway dies and never recovers

	start := time.Now()
	_, err = sess.Stats()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Stats succeeded against a dead gateway")
	}
	if !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("unexpected verdict: %v", err)
	}
	// Capped schedule: 20+40+40+40+40 = 180 ms of backoff. Uncapped
	// doubling would need 620 ms before the dial overhead.
	if elapsed > 450*time.Millisecond {
		t.Fatalf("redial rounds took %v — backoff is not capped", elapsed)
	}
}

// TestClusterRedialCancelledByClose: a Close during redial backoff must
// interrupt the wait immediately — the old code slept the full window
// out on an uninterruptible time.Sleep.
func TestClusterRedialCancelledByClose(t *testing.T) {
	setRedialSchedule(t, 4, 2*time.Second, 2*time.Second)
	d := newClusterDeployment(t, 1, accel.Conv{})
	sess, err := DialCluster(d.addr, d.expectations())
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Attest(); err != nil {
		t.Fatal(err)
	}
	d.srv.Close()

	errc := make(chan error, 1)
	go func() {
		_, err := sess.Stats()
		errc <- err
	}()
	// Let the call fail its first attempt and park in the 2 s backoff,
	// then close the session underneath it.
	//lint:allow test-sleep generous margin for the call to fail its first attempt and park in the 2 s redial backoff being cancelled
	time.Sleep(100 * time.Millisecond)
	closeAt := time.Now()
	sess.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("call succeeded against a dead gateway")
		}
		if !strings.Contains(err.Error(), "closed") {
			t.Fatalf("unexpected verdict after Close: %v", err)
		}
		if waited := time.Since(closeAt); waited > 500*time.Millisecond {
			t.Fatalf("call returned %v after Close — backoff was not cancellable", waited)
		}
	case <-time.After(1 * time.Second):
		t.Fatal("call still parked in redial backoff 1s after Close")
	}
}

// TestAdmissionTokenBucket: per-tenant rate limiting — one tenant's
// exhausted bucket must not touch another's, and buckets refill with
// time, capped at the burst.
func TestAdmissionTokenBucket(t *testing.T) {
	adm := NewAdmission(AdmissionConfig{TenantRate: 5, TenantBurst: 2})
	clock := time.Unix(1000, 0)
	adm.now = func() time.Time { return clock }

	for i := 0; i < 2; i++ {
		if err := adm.Admit("alice", sched.ClassStandard, 1); err != nil {
			t.Fatalf("alice admit %d: %v", i, err)
		}
	}
	if err := adm.Admit("alice", sched.ClassStandard, 1); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("alice over burst: got %v, want ErrRateLimited", err)
	}
	if err := adm.Admit("bob", sched.ClassStandard, 1); err != nil {
		t.Fatalf("bob must have his own bucket: %v", err)
	}

	// 10 s at 5/s would mint 50 tokens; the bucket caps at burst 2.
	clock = clock.Add(10 * time.Second)
	for i := 0; i < 2; i++ {
		if err := adm.Admit("alice", sched.ClassStandard, 1); err != nil {
			t.Fatalf("alice after refill %d: %v", i, err)
		}
	}
	if err := adm.Admit("alice", sched.ClassStandard, 1); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("alice burst must cap the refill: got %v, want ErrRateLimited", err)
	}

	// A batch costs its job count: 2 tokens cannot cover a 3-job batch.
	clock = clock.Add(10 * time.Second)
	if err := adm.Admit("alice", sched.ClassStandard, 3); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("3-job batch on 2 tokens: got %v, want ErrRateLimited", err)
	}
}

// TestAdmissionP99Shed: when the live p99 exceeds the ceiling the
// gateway sheds standard and batch work but keeps admitting critical.
func TestAdmissionP99Shed(t *testing.T) {
	adm := NewAdmission(AdmissionConfig{MaxP99: 50 * time.Millisecond})
	p99 := 10 * time.Millisecond
	var mu sync.Mutex
	adm.p99 = func() time.Duration { mu.Lock(); defer mu.Unlock(); return p99 }
	clock := time.Unix(2000, 0)
	adm.now = func() time.Time { return clock }

	if err := adm.Admit("t", sched.ClassStandard, 1); err != nil {
		t.Fatalf("healthy p99: %v", err)
	}
	mu.Lock()
	p99 = 200 * time.Millisecond
	mu.Unlock()
	clock = clock.Add(time.Second) // expire the p99 cache
	if err := adm.Admit("t", sched.ClassStandard, 1); !errors.Is(err, ErrGatewayOverloaded) {
		t.Fatalf("standard under overload: got %v, want ErrGatewayOverloaded", err)
	}
	if err := adm.Admit("t", sched.ClassBatch, 4); !errors.Is(err, ErrGatewayOverloaded) {
		t.Fatalf("batch under overload: got %v, want ErrGatewayOverloaded", err)
	}
	if err := adm.Admit("t", sched.ClassCritical, 1); err != nil {
		t.Fatalf("critical is exempt from the p99 shed: %v", err)
	}
}

// TestGatewayEnforcesTenantRateLimit: end to end through the RPC plane —
// a session that exceeds its tenant budget gets an application-level
// rejection (never a retry), and an anonymous-class session still works.
func TestGatewayEnforcesTenantRateLimit(t *testing.T) {
	adm := NewAdmission(AdmissionConfig{TenantRate: 0.001, TenantBurst: 2})
	d := newClusterDeploymentTiming(t, 2, accel.Conv{}, core.Timing{}, WithAdmission(adm))
	sess, err := DialCluster(d.addr, d.expectations())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Attest(); err != nil {
		t.Fatal(err)
	}
	sess.SetQoS(QoS{Tenant: "bulk", Class: sched.ClassStandard})

	w := accel.GenConv(4, 4, 1, 21)
	for i := 0; i < 2; i++ {
		if _, err := sess.RunJob("Conv", w.Params, w.Input); err != nil {
			t.Fatalf("job %d within budget: %v", i, err)
		}
	}
	if _, err := sess.RunJob("Conv", w.Params, w.Input); err == nil || !strings.Contains(err.Error(), "rate limit") {
		t.Fatalf("job over budget: got %v, want tenant rate limit rejection", err)
	}
	// Another tenant is unaffected.
	sess.SetQoS(QoS{Tenant: "other", Class: sched.ClassStandard})
	if _, err := sess.RunJob("Conv", w.Params, w.Input); err != nil {
		t.Fatalf("other tenant: %v", err)
	}
}

// TestGatewayDeadlinePropagates: a per-job deadline set on the session
// reaches the scheduler — a job queued behind a slow one expires and is
// shed with the scheduler's deadline verdict instead of running late.
func TestGatewayDeadlinePropagates(t *testing.T) {
	const service = 120 * time.Millisecond
	d := newClusterDeploymentTiming(t, 1, accel.Conv{}, core.Timing{RealJobLatency: service})
	sess, err := DialCluster(d.addr, d.expectations())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Attest(); err != nil {
		t.Fatal(err)
	}

	w := accel.GenConv(4, 4, 1, 22)
	blockerDone := make(chan error, 1)
	go func() {
		_, err := sess.RunJob("Conv", w.Params, w.Input)
		blockerDone <- err
	}()
	//lint:allow test-sleep generous margin for the blocker to reach the device so the deadline job queues behind it
	time.Sleep(30 * time.Millisecond) // blocker is on the device

	sess.SetQoS(QoS{Class: sched.ClassStandard, Deadline: 40 * time.Millisecond})
	if _, err := sess.RunJob("Conv", w.Params, w.Input); err == nil || !strings.Contains(err.Error(), "deadline exceeded") {
		t.Fatalf("expired job: got %v, want deadline exceeded", err)
	}
	if err := <-blockerDone; err != nil {
		t.Fatalf("blocker: %v", err)
	}
}
