package remote

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"salus/internal/accel"
	"salus/internal/cryptoutil"
	"salus/internal/rpc"
	"salus/internal/sched"
)

// TestClusterSessionQoSSurvivesRedial is the regression guard for the QoS
// contract across transport failures: a session that set tenant, class,
// and deadline must attach the SAME fields to requests sent over a
// re-dialed connection after rpc.ErrBroken. The contract lives in session
// state, not connection state (qosFields renders it per request), and this
// test pins that down at the wire: the gateway is restarted as a stub that
// captures the raw JobRequest the redial delivers.
func TestClusterSessionQoSSurvivesRedial(t *testing.T) {
	d := newClusterDeployment(t, 2, accel.Conv{})
	sess, err := DialCluster(d.addr, d.expectations())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Attest(); err != nil {
		t.Fatal(err)
	}
	want := QoS{Tenant: "tenant-qos", Class: sched.ClassCritical, Deadline: 1500 * time.Millisecond}
	sess.SetQoS(want)

	w := accel.GenConv(4, 4, 1, 5)
	ref, err := w.Kernel.Compute(w.Params, w.Input)
	if err != nil {
		t.Fatal(err)
	}
	if out, err := sess.RunJob("Conv", w.Params, w.Input); err != nil || !bytes.Equal(out, ref) {
		t.Fatalf("job before restart: %v", err)
	}

	// Restart the gateway as a capture stub on the same address: it records
	// the JobRequest exactly as the redialed connection delivers it and
	// answers with a validly sealed echo of the reference output.
	sess.mu.Lock()
	key := sess.dataKey
	sess.mu.Unlock()
	d.srv.Close()

	var (
		mu       sync.Mutex
		captured []JobRequest
	)
	stub := rpc.NewServer()
	stub.Handle("Cluster.RunJob", rpc.Typed(func(in JobRequest) (JobResponse, error) {
		mu.Lock()
		captured = append(captured, in)
		mu.Unlock()
		sealedOut, err := cryptoutil.Seal(key, ref, []byte("job-output"))
		if err != nil {
			return JobResponse{}, err
		}
		return JobResponse{SealedOutput: sealedOut}, nil
	}))
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err = stub.Listen(d.addr); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", d.addr, err)
		}
		//lint:allow test-sleep poll interval inside a deadline-bounded rebind loop; the sleep only paces rebind attempts
		time.Sleep(20 * time.Millisecond)
	}
	defer stub.Close()

	out, err := sess.RunJob("Conv", w.Params, w.Input)
	if err != nil {
		t.Fatalf("job after restart: %v", err)
	}
	if !bytes.Equal(out, ref) {
		t.Error("post-restart job output diverges")
	}
	if sess.Redials() < 1 {
		t.Fatalf("Redials() = %d, want >= 1: the stub never saw a redialed request", sess.Redials())
	}

	mu.Lock()
	defer mu.Unlock()
	if len(captured) == 0 {
		t.Fatal("stub gateway captured no requests")
	}
	got := captured[len(captured)-1]
	if got.Tenant != want.Tenant {
		t.Errorf("redialed request tenant = %q, want %q", got.Tenant, want.Tenant)
	}
	if got.Class != want.Class.String() {
		t.Errorf("redialed request class = %q, want %q", got.Class, want.Class.String())
	}
	if got.DeadlineMillis != want.Deadline.Milliseconds() {
		t.Errorf("redialed request deadline_ms = %d, want %d", got.DeadlineMillis, want.Deadline.Milliseconds())
	}
}
