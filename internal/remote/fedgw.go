package remote

import (
	"errors"
	"fmt"
	"sync"

	"salus/internal/client"
	"salus/internal/core"
	"salus/internal/cryptoutil"
	"salus/internal/federation"
	"salus/internal/metrics"
	"salus/internal/rpc"
	"salus/internal/sched"
	"salus/internal/sgx"
	"salus/internal/userapp"
)

// --- Federation gateway ------------------------------------------------------
//
// The front tier over N shard gateways: one RPC endpoint routes sealed
// sessions to their home shard on the consistent-hash ring, spills them to
// the least-loaded sibling when the home shard saturates, and brokers the
// enclave-to-enclave data-key hand-off that lets the whole region serve a
// key the owner provisioned exactly once — to the root shard.
//
// Like every gateway in this repo, the front tier is untrusted plumbing:
// the owner handshake is signed quotes and sealed key copies, jobs are
// AES-GCM end to end, and the hand-off messages are local-attestation
// reports plus grants sealed to attested enclave keys. The gateway can
// deny service; it cannot read or forge anything.

// FederationRouteRequest asks where a session lives.
type FederationRouteRequest struct {
	Tenant string `json:"tenant,omitempty"`
	Key    string `json:"key"`
}

// FederationRouteResponse names the session's home shard, its gateway
// address when published, and the routing-table epoch the answer is valid
// for — a client holding a stale epoch should re-route.
type FederationRouteResponse struct {
	Shard string `json:"shard"`
	Addr  string `json:"addr,omitempty"`
	Epoch uint64 `json:"epoch"`
}

// FederationJobRequest is one sealed job addressed by session identity
// (tenant + data key name) instead of by shard: the ring decides placement.
type FederationJobRequest struct {
	Tenant         string    `json:"tenant,omitempty"`
	Key            string    `json:"key"`
	Kernel         string    `json:"kernel"`
	Params         [4]uint64 `json:"params"`
	SealedInput    []byte    `json:"sealed_input"`
	Class          string    `json:"class,omitempty"`
	DeadlineMillis int64     `json:"deadline_ms,omitempty"`
}

// FederationJobResponse carries the sealed result plus the placement the
// router chose, so clients (and the bench) can observe routing hit rate
// and spill-over without trusting extra state.
type FederationJobResponse struct {
	SealedOutput []byte `json:"sealed_output"`
	Shard        string `json:"shard"`
	Spilled      bool   `json:"spilled,omitempty"`
}

// FederationBatchRequest routes a whole sealed batch as one unit: one
// routing and spill decision for the batch, one RPC frame.
type FederationBatchRequest struct {
	Tenant         string     `json:"tenant,omitempty"`
	Key            string     `json:"key"`
	Kernel         string     `json:"kernel"`
	Jobs           []BatchJob `json:"jobs"`
	Class          string     `json:"class,omitempty"`
	DeadlineMillis int64      `json:"deadline_ms,omitempty"`
}

// FederationBatchResponse carries per-job results in request order plus the
// batch's placement.
type FederationBatchResponse struct {
	Results []BatchJobResult `json:"results"`
	Shard   string           `json:"shard"`
	Spilled bool             `json:"spilled,omitempty"`
}

// HandoffRequest is a recipient enclave's local-attestation key request
// relayed to this federation (core.System.BeginAdoptDataKey wire form).
// The report pins the recipient's measurement and binds its ephemeral
// public key into the report data, so the relaying hosts cannot swap
// either.
type HandoffRequest struct {
	Report       sgx.Report `json:"report"`
	RecipientPub []byte     `json:"recipient_pub"`
}

// HandoffGrant is the donor enclave's answer: the region's data key sealed
// under a one-pass ECDH channel toward the attested recipient key
// (userapp.KeyGrant wire form, fed to core.System.FinishAdoptDataKey).
type HandoffGrant struct {
	SenderPub []byte `json:"sender_pub"`
	Sealed    []byte `json:"sealed"`
}

// FederationStatsResponse snapshots the front tier.
type FederationStatsResponse struct {
	Stats federation.Stats `json:"stats"`
}

// ServeFederation exposes a federation's front tier on addr.
//
// The owner handshake (Federation.Boot / Federation.Provision) runs the
// same idempotent protocol as a cluster gateway, but against the ROOT
// shard's systems only — the region-scoped attestation property: the owner
// attests and provisions O(root shard) devices, and every other shard in
// the region is keyed enclave-to-enclave via Federation.Handoff or the
// in-process hand-off, with zero further owner round trips.
//
// Steady state serves Federation.Route / RunJob / RunBatch / Stats, plus
// Cluster.Stats and Cluster.Metrics aliases over the whole region so
// `salus-client top` can point at a front tier unchanged.
func ServeFederation(fed *federation.Federation, root []*core.System, addr string, opts ...GatewayOption) (*rpc.Server, string, error) {
	if fed == nil {
		return nil, "", fmt.Errorf("remote: nil federation")
	}
	if len(root) == 0 {
		return nil, "", fmt.Errorf("remote: empty root shard")
	}
	rootMgr := fed.Manager(fed.Root())
	if rootMgr == nil {
		return nil, "", fmt.Errorf("remote: federation has no root shard")
	}
	var o gatewayOptions
	for _, opt := range opts {
		opt(&o)
	}
	adm := o.admission

	srv := rpc.NewServer()

	// Owner handshake against the root shard. Each provisioned system is
	// adopted into the root manager; once the whole shard is through, the
	// root is marked keyed and becomes the region's hand-off donor anchor.
	var (
		regMu      sync.Mutex
		registered int
	)
	handlePoolHandshake(srv, "Federation", root, func(sys *core.System) error {
		if err := rootMgr.Adopt(sys); err != nil {
			return err
		}
		regMu.Lock()
		registered++
		done := registered == len(root)
		regMu.Unlock()
		if done {
			fed.MarkRootKeyed()
		}
		return nil
	})

	srv.Handle("Federation.Route", rpc.Typed(func(in FederationRouteRequest) (FederationRouteResponse, error) {
		id, shardAddr, epoch, err := fed.Route(in.Tenant, in.Key)
		if err != nil {
			return FederationRouteResponse{}, err
		}
		return FederationRouteResponse{Shard: id, Addr: shardAddr, Epoch: epoch}, nil
	}))
	srv.Handle("Federation.RunJob", rpc.Typed(func(in FederationJobRequest) (FederationJobResponse, error) {
		opt, err := submitOptions(in.Class, in.DeadlineMillis)
		if err != nil {
			return FederationJobResponse{}, err
		}
		if adm != nil {
			if err := adm.Admit(in.Tenant, opt.Class, 1); err != nil {
				return FederationJobResponse{}, err
			}
		}
		res, err := fed.Submit(in.Tenant, in.Key, in.Kernel, in.Params, in.SealedInput, opt)
		if err != nil {
			return FederationJobResponse{}, err
		}
		out, err := res.Future.Wait()
		if err != nil {
			return FederationJobResponse{}, err
		}
		return FederationJobResponse{SealedOutput: out, Shard: res.Shard, Spilled: res.Spilled}, nil
	}))
	srv.Handle("Federation.RunBatch", rpc.Typed(func(in FederationBatchRequest) (FederationBatchResponse, error) {
		if len(in.Jobs) == 0 {
			return FederationBatchResponse{}, fmt.Errorf("remote: empty batch")
		}
		opt, err := submitOptions(in.Class, in.DeadlineMillis)
		if err != nil {
			return FederationBatchResponse{}, err
		}
		if adm != nil {
			if err := adm.Admit(in.Tenant, opt.Class, len(in.Jobs)); err != nil {
				return FederationBatchResponse{}, err
			}
		}
		jobs := make([]core.SealedJob, len(in.Jobs))
		for i, j := range in.Jobs {
			jobs[i] = core.SealedJob{Params: j.Params, Input: j.SealedInput}
		}
		futs, shardID, spilled, err := fed.SubmitBatch(in.Tenant, in.Key, in.Kernel, jobs, opt)
		if err != nil {
			return FederationBatchResponse{}, err
		}
		resp := FederationBatchResponse{Results: make([]BatchJobResult, len(futs)), Shard: shardID, Spilled: spilled}
		for i, f := range futs {
			out, err := f.Wait()
			if err != nil {
				resp.Results[i].Error = err.Error()
			} else {
				resp.Results[i].SealedOutput = out
			}
		}
		return resp, nil
	}))
	srv.Handle("Federation.Handoff", rpc.Typed(func(in HandoffRequest) (HandoffGrant, error) {
		grant, err := fed.Grant(userapp.KeyRequest{Report: in.Report, RecipientPub: in.RecipientPub})
		if err != nil {
			return HandoffGrant{}, err
		}
		return HandoffGrant{SenderPub: grant.SenderPub, Sealed: grant.Sealed}, nil
	}))
	srv.Handle("Federation.Stats", rpc.Typed(func(struct{}) (FederationStatsResponse, error) {
		return FederationStatsResponse{Stats: fed.Stats()}, nil
	}))
	srv.Handle("Cluster.Stats", rpc.Typed(func(struct{}) (ClusterStatsResponse, error) {
		return ClusterStatsResponse{Devices: fed.AllDeviceStats()}, nil
	}))
	srv.Handle("Cluster.Metrics", rpc.Typed(func(struct{}) (ClusterMetricsResponse, error) {
		return ClusterMetricsResponse{Metrics: metrics.Default().Snapshot()}, nil
	}))

	bound, err := srv.Listen(addr)
	if err != nil {
		return nil, "", err
	}
	return srv, bound, nil
}

// FederationPlacement reports where one request landed.
type FederationPlacement struct {
	Shard   string
	Spilled bool
}

// FederationSession is a data owner's (or client's) session with a
// federation front tier. One session carries one tenant identity and one
// data key: the owner attests the root shard's devices once, provisions
// the key once, and then addresses work purely by session key — the ring
// places it, spill-over moves it, and the hand-off keys new shards, all
// without the session's involvement.
//
// The session counts its RPC calls per method (Calls) so tests and
// benchmarks can assert the region-scoped attestation property from the
// owner's chair: exactly one Boot and one Provision, ever, no matter how
// many shards end up serving the key.
type FederationSession struct {
	addr string
	exps []client.Expectations

	mu      sync.Mutex
	c       *rpc.Client
	closed  bool
	nonce   []byte
	dataKey []byte
	qos     QoS
	qosSet  bool
	calls   map[string]int
}

// DialFederation opens a session toward a federation front tier. exps
// holds one expectation set per ROOT-shard device, in the root's device
// order — the only devices the owner ever verifies.
func DialFederation(addr string, exps []client.Expectations) (*FederationSession, error) {
	if len(exps) == 0 {
		return nil, fmt.Errorf("remote: no device expectations")
	}
	c, err := rpc.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("remote: federation: %w", err)
	}
	return &FederationSession{addr: addr, exps: exps, c: c, calls: make(map[string]int)}, nil
}

// call performs one counted RPC.
func (s *FederationSession) call(method string, params, result any) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("remote: federation session closed")
	}
	s.calls[method]++
	c := s.c
	s.mu.Unlock()
	return c.Call(method, params, result)
}

// Calls reports how many times the session invoked method.
func (s *FederationSession) Calls(method string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls[method]
}

// HandshakeCalls reports the owner's total attestation-path round trips —
// Boot plus Provision. The region-scoped attestation acceptance check:
// this stays at 2 while shards join, spill, and get keyed.
func (s *FederationSession) HandshakeCalls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls["Federation.Boot"] + s.calls["Federation.Provision"]
}

// SetQoS attaches a QoS contract (tenant, class, deadline) to every
// subsequent RunJob/RunBatch. The tenant doubles as the routing identity:
// the ring hashes tenant + session key.
func (s *FederationSession) SetQoS(q QoS) {
	s.mu.Lock()
	s.qos, s.qosSet = q, true
	s.mu.Unlock()
}

func (s *FederationSession) qosFields() (tenant, class string, deadlineMillis int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.qosSet {
		return "", "", 0
	}
	return s.qos.Tenant, s.qos.Class.String(), s.qos.Deadline.Milliseconds()
}

// Attest attests every root-shard device with one fresh nonce and — only
// if all of them verify — provisions one shared data key sealed to each.
// Identical protocol to ClusterSession.Attest, and just as retry-safe; the
// difference is the blast radius of what it unlocks: the key becomes
// serveable by every shard in the region via the enclave hand-off, not
// just the attested pool.
func (s *FederationSession) Attest() error {
	s.mu.Lock()
	if s.nonce == nil {
		s.nonce = client.New(s.exps[0]).NewNonce()
	}
	nonce := s.nonce
	s.mu.Unlock()

	var boot ClusterBootResponse
	if err := s.call("Federation.Boot", ClusterBootRequest{Nonce: nonce}, &boot); err != nil {
		return fmt.Errorf("remote: federation boot: %w", err)
	}
	if len(boot.Quotes) != len(s.exps) {
		return fmt.Errorf("remote: federation returned %d quotes for %d expected devices", len(boot.Quotes), len(s.exps))
	}
	dataPubs := make([][]byte, len(boot.Quotes))
	for i, q := range boot.Quotes {
		pub, err := client.New(s.exps[i]).VerifyRAResponse(nonce, q)
		if err != nil {
			return fmt.Errorf("remote: root device %d attestation: %w", i, err)
		}
		dataPubs[i] = pub
	}
	key := cryptoutil.RandomKey(16)
	req := ClusterProvisionRequest{Provisions: make([]ProvisionRequest, len(dataPubs))}
	for i, pub := range dataPubs {
		senderPub, sealed, err := client.ProvisionDataKey(pub, key)
		if err != nil {
			return fmt.Errorf("remote: seal key for root device %d: %w", i, err)
		}
		req.Provisions[i] = ProvisionRequest{SenderPub: senderPub, Sealed: sealed}
	}
	if err := s.call("Federation.Provision", req, nil); err != nil {
		return fmt.Errorf("remote: federation provision: %w", err)
	}
	s.mu.Lock()
	s.dataKey = key
	s.mu.Unlock()
	return nil
}

// Route asks the front tier where a session key lives right now.
func (s *FederationSession) Route(key string) (FederationRouteResponse, error) {
	tenant, _, _ := s.qosFields()
	var resp FederationRouteResponse
	err := s.call("Federation.Route", FederationRouteRequest{Tenant: tenant, Key: key}, &resp)
	return resp, err
}

// RunJob seals the input under the region's data key and submits it under
// the session key; the front tier places it. Returns the opened output and
// the placement the router reported.
func (s *FederationSession) RunJob(key, kernel string, params [4]uint64, input []byte) ([]byte, FederationPlacement, error) {
	s.mu.Lock()
	dk := s.dataKey
	s.mu.Unlock()
	if dk == nil {
		return nil, FederationPlacement{}, fmt.Errorf("remote: federation session not attested")
	}
	sealedIn, err := cryptoutil.Seal(dk, input, []byte("job-input"))
	if err != nil {
		return nil, FederationPlacement{}, err
	}
	tenant, class, deadlineMillis := s.qosFields()
	req := FederationJobRequest{
		Tenant: tenant, Key: key, Kernel: kernel, Params: params, SealedInput: sealedIn,
		Class: class, DeadlineMillis: deadlineMillis,
	}
	var resp FederationJobResponse
	if err := s.call("Federation.RunJob", req, &resp); err != nil {
		return nil, FederationPlacement{}, err
	}
	out, err := cryptoutil.Open(dk, resp.SealedOutput, []byte("job-output"))
	if err != nil {
		return nil, FederationPlacement{}, fmt.Errorf("remote: sealed output rejected: %w", err)
	}
	return out, FederationPlacement{Shard: resp.Shard, Spilled: resp.Spilled}, nil
}

// RunBatch seals every input and submits the batch under one session key —
// one routing decision, one frame. Results are index-aligned with jobs.
func (s *FederationSession) RunBatch(key, kernel string, jobs []BatchInput) ([]BatchResult, FederationPlacement, error) {
	s.mu.Lock()
	dk := s.dataKey
	s.mu.Unlock()
	if dk == nil {
		return nil, FederationPlacement{}, fmt.Errorf("remote: federation session not attested")
	}
	if len(jobs) == 0 {
		return nil, FederationPlacement{}, nil
	}
	tenant, class, deadlineMillis := s.qosFields()
	req := FederationBatchRequest{
		Tenant: tenant, Key: key, Kernel: kernel, Jobs: make([]BatchJob, len(jobs)),
		Class: class, DeadlineMillis: deadlineMillis,
	}
	for i, j := range jobs {
		sealedIn, err := cryptoutil.Seal(dk, j.Input, []byte("job-input"))
		if err != nil {
			return nil, FederationPlacement{}, err
		}
		req.Jobs[i] = BatchJob{Params: j.Params, SealedInput: sealedIn}
	}
	var resp FederationBatchResponse
	if err := s.call("Federation.RunBatch", req, &resp); err != nil {
		return nil, FederationPlacement{}, err
	}
	if len(resp.Results) != len(jobs) {
		return nil, FederationPlacement{}, fmt.Errorf("remote: federation returned %d results for %d jobs", len(resp.Results), len(jobs))
	}
	placement := FederationPlacement{Shard: resp.Shard, Spilled: resp.Spilled}
	results := make([]BatchResult, len(jobs))
	for i, r := range resp.Results {
		if r.Error != "" {
			results[i].Err = errors.New(r.Error)
			continue
		}
		out, err := cryptoutil.Open(dk, r.SealedOutput, []byte("job-output"))
		if err != nil {
			results[i].Err = fmt.Errorf("remote: sealed output rejected: %w", err)
			continue
		}
		results[i].Output = out
	}
	return results, placement, nil
}

// Stats fetches the federation-wide routing and shard snapshot.
func (s *FederationSession) Stats() (federation.Stats, error) {
	var resp FederationStatsResponse
	if err := s.call("Federation.Stats", struct{}{}, &resp); err != nil {
		return federation.Stats{}, err
	}
	return resp.Stats, nil
}

// DeviceStats fetches per-device counters across every shard in the region.
func (s *FederationSession) DeviceStats() ([]sched.DeviceStats, error) {
	var resp ClusterStatsResponse
	if err := s.call("Cluster.Stats", struct{}{}, &resp); err != nil {
		return nil, err
	}
	return resp.Devices, nil
}

// Metrics fetches the front-tier process's metrics snapshot.
func (s *FederationSession) Metrics() (metrics.Snapshot, error) {
	var resp ClusterMetricsResponse
	if err := s.call("Cluster.Metrics", struct{}{}, &resp); err != nil {
		return metrics.Snapshot{}, err
	}
	return resp.Metrics, nil
}

// Close releases the session.
func (s *FederationSession) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.c.Close()
	s.c = nil
	return err
}
