package remote

import (
	"fmt"

	"salus/internal/client"
	"salus/internal/core"
	"salus/internal/cryptoutil"
	"salus/internal/rpc"
	"salus/internal/sched"
	"salus/internal/sgx"
)

// --- Cluster gateway ---------------------------------------------------------
//
// The multi-device analogue of the instance gateway: one RPC endpoint
// fronts a pool of FPGA systems behind a sched.Scheduler. The data owner
// attests every device individually — there is no transitive trust between
// boards — then provisions one shared data key to all of them, after which
// a sealed job runs on whichever device the scheduler picks.

// ClusterBootRequest carries the data owner's RA challenge for the pool.
type ClusterBootRequest struct {
	Nonce []byte `json:"nonce"`
}

// ClusterBootResponse carries one deferred quote per device, in the
// cluster's fixed device order.
type ClusterBootResponse struct {
	Quotes []sgx.Quote `json:"quotes"`
}

// ClusterProvisionRequest carries one sealed copy of the shared data key
// per device, in the same order as the boot quotes.
type ClusterProvisionRequest struct {
	Provisions []ProvisionRequest `json:"provisions"`
}

// ClusterStatsResponse snapshots the scheduler.
type ClusterStatsResponse struct {
	Devices []sched.DeviceStats `json:"devices"`
}

// ServeCluster exposes a pool's boot/provision/job gateway on addr. The
// systems must be freshly constructed (not yet booted); after a successful
// Cluster.Provision they are registered into sch and jobs flow. Like the
// instance gateway, this is untrusted plumbing: the quotes are signed, the
// key copies are sealed to attested enclaves, and the job payloads are
// AES-GCM under the provisioned key.
func ServeCluster(systems []*core.System, sch *sched.Scheduler, addr string) (*rpc.Server, string, error) {
	if len(systems) == 0 {
		return nil, "", fmt.Errorf("remote: empty cluster")
	}
	srv := rpc.NewServer()
	srv.Handle("Cluster.Boot", rpc.Typed(func(in ClusterBootRequest) (ClusterBootResponse, error) {
		out := ClusterBootResponse{Quotes: make([]sgx.Quote, len(systems))}
		for i, sys := range systems {
			q, err := sys.BootAndQuote(in.Nonce)
			if err != nil {
				return ClusterBootResponse{}, fmt.Errorf("device %d (%s): %w", i, sys.Device.DNA(), err)
			}
			out.Quotes[i] = q
		}
		return out, nil
	}))
	srv.Handle("Cluster.Provision", rpc.Typed(func(in ClusterProvisionRequest) (struct{}, error) {
		if len(in.Provisions) != len(systems) {
			return struct{}{}, fmt.Errorf("got %d provisions for %d devices", len(in.Provisions), len(systems))
		}
		for i, p := range in.Provisions {
			if err := systems[i].FinishProvision(p.SenderPub, p.Sealed); err != nil {
				return struct{}{}, fmt.Errorf("device %d: %w", i, err)
			}
		}
		// Only a fully provisioned pool joins the scheduler: a device that
		// failed provisioning never sees a job.
		for i, sys := range systems {
			if err := sch.Register(sys); err != nil {
				return struct{}{}, fmt.Errorf("device %d: %w", i, err)
			}
		}
		return struct{}{}, nil
	}))
	srv.Handle("Cluster.RunJob", rpc.Typed(func(in JobRequest) (JobResponse, error) {
		out, err := sch.SubmitSealed(in.Kernel, in.Params, in.SealedInput).Wait()
		if err != nil {
			return JobResponse{}, err
		}
		return JobResponse{SealedOutput: out}, nil
	}))
	srv.Handle("Cluster.Stats", rpc.Typed(func(struct{}) (ClusterStatsResponse, error) {
		return ClusterStatsResponse{Devices: sch.Stats()}, nil
	}))
	bound, err := srv.Listen(addr)
	if err != nil {
		return nil, "", err
	}
	return srv, bound, nil
}

// ClusterSession is the data owner's session with a device pool. Each
// device is verified against its own expectations (its own DNA, its own
// RoT-injected bitstream hash); one shared data key is provisioned to all.
type ClusterSession struct {
	c       *rpc.Client
	exps    []client.Expectations
	dataKey []byte
}

// DialCluster opens a session toward a cluster gateway. exps holds one
// expectation set per device, in the cluster's device order (the CSP
// publishes the order with the DNAs; a mismatch fails attestation, since
// expectations pin each device's DNA).
func DialCluster(addr string, exps []client.Expectations) (*ClusterSession, error) {
	if len(exps) == 0 {
		return nil, fmt.Errorf("remote: no device expectations")
	}
	c, err := rpc.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("remote: cluster: %w", err)
	}
	return &ClusterSession{c: c, exps: exps}, nil
}

// Attest attests every device in the pool with one fresh nonce, and — only
// if all of them verify — provisions one shared data key, sealed
// separately to each device's attested provisioning key. All-or-nothing:
// one bad quote and no device receives the key.
func (s *ClusterSession) Attest() error {
	ver := client.New(s.exps[0])
	nonce := ver.NewNonce()
	var boot ClusterBootResponse
	if err := s.c.Call("Cluster.Boot", ClusterBootRequest{Nonce: nonce}, &boot); err != nil {
		return fmt.Errorf("remote: cluster boot: %w", err)
	}
	if len(boot.Quotes) != len(s.exps) {
		return fmt.Errorf("remote: cluster returned %d quotes for %d expected devices", len(boot.Quotes), len(s.exps))
	}
	dataPubs := make([][]byte, len(boot.Quotes))
	for i, q := range boot.Quotes {
		pub, err := client.New(s.exps[i]).VerifyRAResponse(nonce, q)
		if err != nil {
			return fmt.Errorf("remote: device %d attestation: %w", i, err)
		}
		dataPubs[i] = pub
	}
	key := cryptoutil.RandomKey(16)
	req := ClusterProvisionRequest{Provisions: make([]ProvisionRequest, len(dataPubs))}
	for i, pub := range dataPubs {
		senderPub, sealed, err := client.ProvisionDataKey(pub, key)
		if err != nil {
			return fmt.Errorf("remote: seal key for device %d: %w", i, err)
		}
		req.Provisions[i] = ProvisionRequest{SenderPub: senderPub, Sealed: sealed}
	}
	if err := s.c.Call("Cluster.Provision", req, nil); err != nil {
		return fmt.Errorf("remote: cluster provision: %w", err)
	}
	s.dataKey = key
	return nil
}

// RunJob seals the input under the pool's shared data key, submits it to
// the cluster scheduler, and opens the sealed result. Which device ran the
// job is invisible — and irrelevant, since every device was individually
// attested before the key left the owner.
func (s *ClusterSession) RunJob(kernel string, params [4]uint64, input []byte) ([]byte, error) {
	if s.dataKey == nil {
		return nil, fmt.Errorf("remote: cluster session not attested")
	}
	sealedIn, err := cryptoutil.Seal(s.dataKey, input, []byte("job-input"))
	if err != nil {
		return nil, err
	}
	var resp JobResponse
	if err := s.c.Call("Cluster.RunJob", JobRequest{Kernel: kernel, Params: params, SealedInput: sealedIn}, &resp); err != nil {
		return nil, err
	}
	out, err := cryptoutil.Open(s.dataKey, resp.SealedOutput, []byte("job-output"))
	if err != nil {
		return nil, fmt.Errorf("remote: sealed output rejected: %w", err)
	}
	return out, nil
}

// Stats fetches the cluster's per-device counters.
func (s *ClusterSession) Stats() ([]sched.DeviceStats, error) {
	var resp ClusterStatsResponse
	if err := s.c.Call("Cluster.Stats", struct{}{}, &resp); err != nil {
		return nil, err
	}
	return resp.Devices, nil
}

// Close releases the session.
func (s *ClusterSession) Close() error { return s.c.Close() }
