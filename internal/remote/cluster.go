package remote

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"salus/internal/client"
	"salus/internal/core"
	"salus/internal/cryptoutil"
	"salus/internal/metrics"
	"salus/internal/rpc"
	"salus/internal/sched"
	"salus/internal/sgx"
)

// mRedials counts gateway re-dials after broken transports, fleet-wide.
var mRedials = metrics.Default().Counter("salus_remote_redials_total")

// --- Cluster gateway ---------------------------------------------------------
//
// The multi-device analogue of the instance gateway: one RPC endpoint
// fronts a pool of FPGA systems behind a sched.Scheduler. The data owner
// attests every device individually — there is no transitive trust between
// boards — then provisions one shared data key to all of them, after which
// a sealed job runs on whichever device the scheduler picks.

// ClusterBootRequest carries the data owner's RA challenge for the pool.
type ClusterBootRequest struct {
	Nonce []byte `json:"nonce"`
}

// ClusterBootResponse carries one deferred quote per device, in the
// cluster's fixed device order.
type ClusterBootResponse struct {
	Quotes []sgx.Quote `json:"quotes"`
}

// ClusterProvisionRequest carries one sealed copy of the shared data key
// per device, in the same order as the boot quotes.
type ClusterProvisionRequest struct {
	Provisions []ProvisionRequest `json:"provisions"`
}

// BatchJob is one sealed job inside a batch request.
type BatchJob struct {
	Params      [4]uint64 `json:"params"`
	SealedInput []byte    `json:"sealed_input"`
}

// BatchRequest carries a whole batch of sealed jobs for one kernel in a
// single RPC frame — one length prefix, one JSON envelope, one scheduler
// hand-off — instead of one round trip per job.
type BatchRequest struct {
	Kernel string     `json:"kernel"`
	Jobs   []BatchJob `json:"jobs"`
	// QoS fields; see JobRequest. One contract covers the whole batch.
	Tenant         string `json:"tenant,omitempty"`
	Class          string `json:"class,omitempty"`
	DeadlineMillis int64  `json:"deadline_ms,omitempty"`
}

// BatchJobResult is one job's outcome, index-aligned with the request.
// Jobs fail individually (an oversize input, a device-side rejection)
// without failing their batch-mates.
type BatchJobResult struct {
	SealedOutput []byte `json:"sealed_output,omitempty"`
	Error        string `json:"error,omitempty"`
}

// BatchResponse carries every job's result in request order.
type BatchResponse struct {
	Results []BatchJobResult `json:"results"`
}

// ClusterStatsResponse snapshots the scheduler.
type ClusterStatsResponse struct {
	Devices []sched.DeviceStats `json:"devices"`
}

// ClusterMetricsResponse carries the gateway process's whole metrics
// registry: every counter, gauge, and latency histogram the instrumented
// layers (rpc, sched, fleet, smapp, core) export. `salus-client top` polls
// this alongside Cluster.Stats.
type ClusterMetricsResponse struct {
	Metrics metrics.Snapshot `json:"metrics"`
}

// ServeCluster exposes a pool's boot/provision/job gateway on addr. The
// systems must be freshly constructed (not yet booted); after a successful
// Cluster.Provision they are registered into sch and jobs flow. Like the
// instance gateway, this is untrusted plumbing: the quotes are signed, the
// key copies are sealed to attested enclaves, and the job payloads are
// AES-GCM under the provisioned key.
//
// Boot and Provision are retry-safe: a client whose connection broke
// mid-handshake can re-dial and resend the same request. A replayed Boot
// under the original nonce returns the cached quotes (re-signing the same
// deterministic response leaks nothing); a partially applied Boot or
// Provision resumes from the first unfinished device; a replayed Provision
// returns success without double-registering anything. Only *conflicting*
// replays — a different nonce, a different key material — are refused.
func ServeCluster(systems []*core.System, sch *sched.Scheduler, addr string, opts ...GatewayOption) (*rpc.Server, string, error) {
	if len(systems) == 0 {
		return nil, "", fmt.Errorf("remote: empty cluster")
	}
	var o gatewayOptions
	for _, opt := range opts {
		opt(&o)
	}
	srv := rpc.NewServer()
	handleClusterHandshake(srv, systems, sch.Register)
	handleClusterServing(srv, sch, o.admission)
	bound, err := srv.Listen(addr)
	if err != nil {
		return nil, "", err
	}
	return srv, bound, nil
}

// handleClusterHandshake installs the idempotent Cluster.Boot and
// Cluster.Provision handlers over a fixed initial device order. register is
// called once per device after the whole pool finished provisioning (the
// scheduler for a plain cluster, fleet adoption for an elastic one).
func handleClusterHandshake(srv *rpc.Server, systems []*core.System, register func(*core.System) error) {
	handlePoolHandshake(srv, "Cluster", systems, register)
}

// handlePoolHandshake is the prefix-parameterised body of
// handleClusterHandshake, shared with the federation gateway (which serves
// the identical owner handshake as Federation.Boot / Federation.Provision
// against the root shard only).
func handlePoolHandshake(srv *rpc.Server, prefix string, systems []*core.System, register func(*core.System) error) {
	// Handshake state. RPC handlers run concurrently (one goroutine per
	// request), so every mutation of the pool is serialised here.
	var (
		mu         sync.Mutex
		bootNonce  []byte
		bootQuotes []sgx.Quote
		booted     int // devices through BootAndQuote
		provFP     []byte
		provided   int // devices through FinishProvision
		registered int // devices registered into the scheduler
	)

	srv.Handle(prefix+".Boot", rpc.Typed(func(in ClusterBootRequest) (ClusterBootResponse, error) {
		mu.Lock()
		defer mu.Unlock()
		// The nonce arrives over RPC from an unauthenticated caller: a
		// short-circuiting compare would let an attacker probe the real
		// owner's challenge byte by byte through response timing.
		if booted > 0 && !cryptoutil.ConstantTimeEqual(in.Nonce, bootNonce) {
			return ClusterBootResponse{}, fmt.Errorf("cluster already booted under a different nonce")
		}
		if booted == 0 {
			bootNonce = append([]byte(nil), in.Nonce...)
			bootQuotes = make([]sgx.Quote, len(systems))
		}
		for ; booted < len(systems); booted++ {
			q, err := systems[booted].BootAndQuote(in.Nonce)
			if err != nil {
				return ClusterBootResponse{}, fmt.Errorf("device %d (%s): %w", booted, systems[booted].Device.DNA(), err)
			}
			bootQuotes[booted] = q
		}
		return ClusterBootResponse{Quotes: bootQuotes}, nil
	}))
	srv.Handle(prefix+".Provision", rpc.Typed(func(in ClusterProvisionRequest) (struct{}, error) {
		if len(in.Provisions) != len(systems) {
			return struct{}{}, fmt.Errorf("got %d provisions for %d devices", len(in.Provisions), len(systems))
		}
		raw, err := json.Marshal(in)
		if err != nil {
			return struct{}{}, err
		}
		fp := sha256.Sum256(raw)
		mu.Lock()
		defer mu.Unlock()
		// Provision payloads carry sealed key material; the replay
		// fingerprint check must not leak prefix-match length to a caller
		// replaying candidate payloads.
		if provided > 0 && !cryptoutil.ConstantTimeEqual(fp[:], provFP) {
			return struct{}{}, fmt.Errorf("cluster already provisioned with different key material")
		}
		provFP = fp[:]
		for ; provided < len(systems); provided++ {
			p := in.Provisions[provided]
			if err := systems[provided].FinishProvision(p.SenderPub, p.Sealed); err != nil {
				return struct{}{}, fmt.Errorf("device %d: %w", provided, err)
			}
		}
		// Only a fully provisioned pool joins the scheduler: a device that
		// failed provisioning never sees a job, and a replayed Provision
		// never registers a device twice.
		for ; registered < len(systems); registered++ {
			if err := register(systems[registered]); err != nil {
				return struct{}{}, fmt.Errorf("device %d: %w", registered, err)
			}
		}
		return struct{}{}, nil
	}))
}

// submitOptions maps a request's wire QoS fields onto scheduler options.
// An unknown class is a deliberate rejection, not a default.
func submitOptions(class string, deadlineMillis int64) (sched.SubmitOptions, error) {
	c, ok := sched.ClassByName(class)
	if !ok {
		return sched.SubmitOptions{}, fmt.Errorf("remote: unknown class %q", class)
	}
	opt := sched.SubmitOptions{Class: c}
	if deadlineMillis > 0 {
		opt.Deadline = time.Now().Add(time.Duration(deadlineMillis) * time.Millisecond)
	}
	return opt, nil
}

// handleClusterServing installs the steady-state job and stats handlers.
// A non-nil adm screens every job request before it reaches the
// scheduler: per-tenant token buckets plus the live-p99 overload shed.
func handleClusterServing(srv *rpc.Server, sch *sched.Scheduler, adm *Admission) {
	srv.Handle("Cluster.RunJob", rpc.Typed(func(in JobRequest) (JobResponse, error) {
		opt, err := submitOptions(in.Class, in.DeadlineMillis)
		if err != nil {
			return JobResponse{}, err
		}
		if adm != nil {
			if err := adm.Admit(in.Tenant, opt.Class, 1); err != nil {
				return JobResponse{}, err
			}
		}
		out, err := sch.SubmitSealedOpts(in.Kernel, in.Params, in.SealedInput, opt).Wait()
		if err != nil {
			return JobResponse{}, err
		}
		return JobResponse{SealedOutput: out}, nil
	}))
	srv.Handle("Cluster.RunBatch", rpc.Typed(func(in BatchRequest) (BatchResponse, error) {
		if len(in.Jobs) == 0 {
			return BatchResponse{}, fmt.Errorf("remote: empty batch")
		}
		opt, err := submitOptions(in.Class, in.DeadlineMillis)
		if err != nil {
			return BatchResponse{}, err
		}
		if adm != nil {
			if err := adm.Admit(in.Tenant, opt.Class, len(in.Jobs)); err != nil {
				return BatchResponse{}, err
			}
		}
		jobs := make([]core.SealedJob, len(in.Jobs))
		for i, j := range in.Jobs {
			jobs[i] = core.SealedJob{Params: j.Params, Input: j.SealedInput}
		}
		futs := sch.SubmitSealedBatchOpts(in.Kernel, jobs, opt)
		resp := BatchResponse{Results: make([]BatchJobResult, len(futs))}
		for i, f := range futs {
			out, err := f.Wait()
			if err != nil {
				resp.Results[i].Error = err.Error()
			} else {
				resp.Results[i].SealedOutput = out
			}
		}
		return resp, nil
	}))
	srv.Handle("Cluster.Stats", rpc.Typed(func(struct{}) (ClusterStatsResponse, error) {
		return ClusterStatsResponse{Devices: sch.Stats()}, nil
	}))
	srv.Handle("Cluster.Metrics", rpc.Typed(func(struct{}) (ClusterMetricsResponse, error) {
		return ClusterMetricsResponse{Metrics: metrics.Default().Snapshot()}, nil
	}))
}

// Reconnect policy for ClusterSession: how many dial-and-retry rounds one
// call may burn before surfacing the transport error, and the backoff —
// doubled per round but capped at clusterRedialMax, so a long outage
// never grows the wait unboundedly. Variables, not constants, so tests
// can compress the schedule.
var (
	clusterRedialAttempts = 4
	clusterRedialBase     = 50 * time.Millisecond
	clusterRedialMax      = 1 * time.Second
)

// ClusterSession is the data owner's session with a device pool. Each
// device is verified against its own expectations (its own DNA, its own
// RoT-injected bitstream hash); one shared data key is provisioned to all.
//
// The session survives transport failures: when the underlying rpc client
// is poisoned with rpc.ErrBroken, the next call re-dials with exponential
// backoff and retries. That is sound because nothing secret lives in the
// connection — the data key survives reconnects, the gateway's Boot and
// Provision handlers are idempotent, and job payloads are sealed
// end-to-end — so a dropped TCP stream costs latency, never safety.
// Application-level rejections from the server are returned immediately,
// never retried.
type ClusterSession struct {
	addr string
	exps []client.Expectations
	done chan struct{} // closed by Close; interrupts redial backoff

	mu      sync.Mutex
	c       *rpc.Client
	closed  bool
	redials int
	nonce   []byte
	dataKey []byte
	qos     QoS
	qosSet  bool
}

// QoS is a session's per-job quality-of-service contract, attached to
// every RunJob/RunBatch request so the gateway can rate-limit by tenant,
// schedule by class, and shed expired work.
type QoS struct {
	// Tenant identifies the caller for the gateway's per-tenant token
	// bucket; empty means the anonymous bucket.
	Tenant string
	// Class is the scheduling band (sched.ClassBatch/Standard/Critical).
	Class sched.Class
	// Deadline, when positive, is the per-job relative deadline: the
	// gateway converts it to an absolute deadline at admission.
	Deadline time.Duration
}

// SetQoS attaches a QoS contract to every subsequent RunJob/RunBatch.
// Sessions that never call it send no QoS fields and the gateway applies
// its defaults (ClassStandard, no deadline, anonymous tenant).
func (s *ClusterSession) SetQoS(q QoS) {
	s.mu.Lock()
	s.qos, s.qosSet = q, true
	s.mu.Unlock()
}

// qosFields renders the session's QoS for a wire request.
func (s *ClusterSession) qosFields() (tenant, class string, deadlineMillis int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.qosSet {
		return "", "", 0
	}
	return s.qos.Tenant, s.qos.Class.String(), s.qos.Deadline.Milliseconds()
}

// DialCluster opens a session toward a cluster gateway. exps holds one
// expectation set per device, in the cluster's device order (the CSP
// publishes the order with the DNAs; a mismatch fails attestation, since
// expectations pin each device's DNA).
func DialCluster(addr string, exps []client.Expectations) (*ClusterSession, error) {
	if len(exps) == 0 {
		return nil, fmt.Errorf("remote: no device expectations")
	}
	c, err := rpc.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("remote: cluster: %w", err)
	}
	return &ClusterSession{addr: addr, exps: exps, c: c, done: make(chan struct{})}, nil
}

// client returns the live rpc client, re-dialing if the previous one was
// torn down.
func (s *ClusterSession) client() (*rpc.Client, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("remote: cluster session closed")
	}
	if s.c == nil {
		c, err := rpc.Dial(s.addr)
		if err != nil {
			return nil, err
		}
		s.c = c
		s.redials++
		mRedials.Inc()
	}
	return s.c, nil
}

// invalidate drops a broken client so the next call re-dials.
func (s *ClusterSession) invalidate(old *rpc.Client) {
	s.mu.Lock()
	if s.c == old {
		old.Close()
		s.c = nil
	}
	s.mu.Unlock()
}

// sleep waits out one backoff window, returning false immediately if the
// session is closed first — a Close during redial must never wait out the
// full backoff.
func (s *ClusterSession) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.done:
		return false
	}
}

// call performs one RPC with redial-and-retry on broken transports. The
// backoff doubles per attempt up to clusterRedialMax and the wait aborts
// the moment the session closes.
func (s *ClusterSession) call(method string, params, result any) error {
	backoff := clusterRedialBase
	var err error
	for attempt := 0; attempt < clusterRedialAttempts; attempt++ {
		if attempt > 0 {
			if !s.sleep(backoff) {
				return fmt.Errorf("remote: cluster session closed during redial backoff")
			}
			backoff *= 2
			if backoff > clusterRedialMax {
				backoff = clusterRedialMax
			}
		}
		var c *rpc.Client
		c, err = s.client()
		if err != nil {
			if s.isClosed() {
				return err
			}
			continue // the gateway may be coming back
		}
		err = c.Call(method, params, result)
		if err == nil {
			return nil
		}
		if !errors.Is(err, rpc.ErrBroken) {
			// Deliberate server rejection, timeout, oversized frame: the
			// transport is fine, retrying cannot help.
			return err
		}
		s.invalidate(c)
	}
	return fmt.Errorf("remote: cluster gateway unreachable after %d attempts: %w", clusterRedialAttempts, err)
}

func (s *ClusterSession) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Redials reports how many times the session re-dialed the gateway after a
// broken transport.
func (s *ClusterSession) Redials() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.redials
}

// Attest attests every device in the pool with one fresh nonce, and — only
// if all of them verify — provisions one shared data key, sealed
// separately to each device's attested provisioning key. All-or-nothing:
// one bad quote and no device receives the key.
//
// Attest is retry-safe end to end: the nonce is generated once per session
// and reused on retries, matching the gateway's idempotent Boot handler,
// so an Attest that died to a mid-flight connection loss can simply be
// called again.
func (s *ClusterSession) Attest() error {
	s.mu.Lock()
	if s.nonce == nil {
		s.nonce = client.New(s.exps[0]).NewNonce()
	}
	nonce := s.nonce
	s.mu.Unlock()

	var boot ClusterBootResponse
	if err := s.call("Cluster.Boot", ClusterBootRequest{Nonce: nonce}, &boot); err != nil {
		return fmt.Errorf("remote: cluster boot: %w", err)
	}
	if len(boot.Quotes) != len(s.exps) {
		return fmt.Errorf("remote: cluster returned %d quotes for %d expected devices", len(boot.Quotes), len(s.exps))
	}
	dataPubs := make([][]byte, len(boot.Quotes))
	for i, q := range boot.Quotes {
		pub, err := client.New(s.exps[i]).VerifyRAResponse(nonce, q)
		if err != nil {
			return fmt.Errorf("remote: device %d attestation: %w", i, err)
		}
		dataPubs[i] = pub
	}
	key := cryptoutil.RandomKey(16)
	req := ClusterProvisionRequest{Provisions: make([]ProvisionRequest, len(dataPubs))}
	for i, pub := range dataPubs {
		senderPub, sealed, err := client.ProvisionDataKey(pub, key)
		if err != nil {
			return fmt.Errorf("remote: seal key for device %d: %w", i, err)
		}
		req.Provisions[i] = ProvisionRequest{SenderPub: senderPub, Sealed: sealed}
	}
	if err := s.call("Cluster.Provision", req, nil); err != nil {
		return fmt.Errorf("remote: cluster provision: %w", err)
	}
	s.mu.Lock()
	s.dataKey = key
	s.mu.Unlock()
	return nil
}

// RunJob seals the input under the pool's shared data key, submits it to
// the cluster scheduler, and opens the sealed result. Which device ran the
// job is invisible — and irrelevant, since every device was individually
// attested before the key left the owner. Sealed jobs are pure and
// idempotent, so a job lost to a broken connection is safely re-submitted
// over a fresh one.
func (s *ClusterSession) RunJob(kernel string, params [4]uint64, input []byte) ([]byte, error) {
	s.mu.Lock()
	key := s.dataKey
	s.mu.Unlock()
	if key == nil {
		return nil, fmt.Errorf("remote: cluster session not attested")
	}
	sealedIn, err := cryptoutil.Seal(key, input, []byte("job-input"))
	if err != nil {
		return nil, err
	}
	tenant, class, deadlineMillis := s.qosFields()
	req := JobRequest{
		Kernel: kernel, Params: params, SealedInput: sealedIn,
		Tenant: tenant, Class: class, DeadlineMillis: deadlineMillis,
	}
	var resp JobResponse
	if err := s.call("Cluster.RunJob", req, &resp); err != nil {
		return nil, err
	}
	out, err := cryptoutil.Open(key, resp.SealedOutput, []byte("job-output"))
	if err != nil {
		return nil, fmt.Errorf("remote: sealed output rejected: %w", err)
	}
	return out, nil
}

// BatchInput is one plaintext job handed to RunBatch.
type BatchInput struct {
	Params [4]uint64
	Input  []byte
}

// BatchResult is one job's opened outcome, index-aligned with the inputs.
type BatchResult struct {
	Output []byte
	Err    error
}

// RunBatch seals every input under the pool's shared data key and submits
// the whole batch in one RPC frame; the cluster runs it through the
// scheduler's batched path (one sealed register program per chunk on the
// device). Jobs succeed or fail individually — the returned slice is
// index-aligned with jobs — while the error covers whole-batch failures
// (unattested session, unreachable gateway, malformed response). Like
// RunJob, a batch lost to a broken connection is safely re-submitted:
// sealed jobs are pure and idempotent.
func (s *ClusterSession) RunBatch(kernel string, jobs []BatchInput) ([]BatchResult, error) {
	s.mu.Lock()
	key := s.dataKey
	s.mu.Unlock()
	if key == nil {
		return nil, fmt.Errorf("remote: cluster session not attested")
	}
	if len(jobs) == 0 {
		return nil, nil
	}
	tenant, class, deadlineMillis := s.qosFields()
	req := BatchRequest{
		Kernel: kernel, Jobs: make([]BatchJob, len(jobs)),
		Tenant: tenant, Class: class, DeadlineMillis: deadlineMillis,
	}
	for i, j := range jobs {
		sealedIn, err := cryptoutil.Seal(key, j.Input, []byte("job-input"))
		if err != nil {
			return nil, err
		}
		req.Jobs[i] = BatchJob{Params: j.Params, SealedInput: sealedIn}
	}
	var resp BatchResponse
	if err := s.call("Cluster.RunBatch", req, &resp); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(jobs) {
		return nil, fmt.Errorf("remote: cluster returned %d results for %d jobs", len(resp.Results), len(jobs))
	}
	results := make([]BatchResult, len(jobs))
	for i, r := range resp.Results {
		if r.Error != "" {
			results[i].Err = errors.New(r.Error)
			continue
		}
		out, err := cryptoutil.Open(key, r.SealedOutput, []byte("job-output"))
		if err != nil {
			results[i].Err = fmt.Errorf("remote: sealed output rejected: %w", err)
			continue
		}
		results[i].Output = out
	}
	return results, nil
}

// Stats fetches the cluster's per-device counters.
func (s *ClusterSession) Stats() ([]sched.DeviceStats, error) {
	var resp ClusterStatsResponse
	if err := s.call("Cluster.Stats", struct{}{}, &resp); err != nil {
		return nil, err
	}
	return resp.Devices, nil
}

// Metrics fetches the gateway's aggregate metrics snapshot.
func (s *ClusterSession) Metrics() (metrics.Snapshot, error) {
	var resp ClusterMetricsResponse
	if err := s.call("Cluster.Metrics", struct{}{}, &resp); err != nil {
		return metrics.Snapshot{}, err
	}
	return resp.Metrics, nil
}

// Close releases the session. A call parked in redial backoff returns
// promptly instead of waiting the window out.
func (s *ClusterSession) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.done)
	}
	if s.c == nil {
		return nil
	}
	err := s.c.Close()
	s.c = nil
	return err
}
