package remote

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"salus/internal/accel"
	"salus/internal/client"
	"salus/internal/core"
	"salus/internal/cryptoutil"
	"salus/internal/federation"
	"salus/internal/rpc"
	"salus/internal/sched"
	"salus/internal/userapp"
)

// userappGrant converts the wire grant back to the enclave type.
func userappGrant(g HandoffGrant) userapp.KeyGrant {
	return userapp.KeyGrant{SenderPub: g.SenderPub, Sealed: g.Sealed}
}

// dialFederationDeployment builds a local federation with the remote
// handshake pending, serves it, and returns an attested owner session.
func dialFederationDeployment(t *testing.T, spec federation.LocalSpec) (*federation.LocalDeployment, *FederationSession, string) {
	t.Helper()
	if spec.Kernel == nil {
		spec.Kernel = accel.Conv{}
	}
	spec.RemoteHandshake = true
	d, err := federation.BuildLocal(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	srv, addr, err := ServeFederation(d.Fed, d.RootSystems, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	exps := make([]client.Expectations, len(d.RootSystems))
	for i, sys := range d.RootSystems {
		exps[i] = sys.Expectations()
	}
	sess, err := DialFederation(addr, exps)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	if err := sess.Attest(); err != nil {
		t.Fatal(err)
	}
	return d, sess, addr
}

// TestFederationGatewayEndToEnd drives the whole remote story: the owner
// attests ONLY the root shard through the front tier, yet sessions land on
// all three shards (the siblings keyed by enclave hand-off), results
// verify under the owner's key, and routing answers match placements.
func TestFederationGatewayEndToEnd(t *testing.T) {
	d, sess, _ := dialFederationDeployment(t, federation.LocalSpec{
		Shards: 3, DevicesPerShard: 2,
		Federation: federation.Config{SpillHighWater: 1e9},
	})

	seen := map[string]bool{}
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("dataset-%d", i)
		w := accel.GenConv(4, 4, 1, int64(i))
		out, placement, err := sess.RunJob(key, "Conv", w.Params, w.Input)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		ref, err := w.Kernel.Compute(w.Params, w.Input)
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != string(ref) {
			t.Fatalf("job %d diverges from reference", i)
		}
		route, err := sess.Route(key)
		if err != nil {
			t.Fatal(err)
		}
		if route.Shard != placement.Shard {
			t.Fatalf("job %d ran on %s but routes to %s", i, placement.Shard, route.Shard)
		}
		seen[placement.Shard] = true
	}
	if len(seen) != 3 {
		t.Fatalf("60 sessions landed on %d of 3 shards: %v", len(seen), seen)
	}

	st, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Handoffs != 4 { // 2 sibling shards x 2 boards
		t.Errorf("handoffs = %d, want 4", st.Handoffs)
	}
	for _, sh := range st.Shards {
		if !sh.Keyed || sh.Devices != 2 {
			t.Errorf("shard %s: keyed=%v devices=%d", sh.ID, sh.Keyed, sh.Devices)
		}
	}
	// Region-scoped attestation: the owner's entire attestation cost was one
	// Boot and one Provision against the root shard, for a 3-shard region.
	if got := sess.HandshakeCalls(); got != 2 {
		t.Errorf("owner handshake calls = %d, want 2", got)
	}
	// The whole region is visible through the Cluster.Stats alias.
	devs, err := sess.DeviceStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(devs) != 6 {
		t.Errorf("region device stats = %d devices, want 6", len(devs))
	}
	_ = d
}

// TestFederationSpillOverZeroOwnerRPCs is the migration acceptance check:
// a hot session saturates its 1-device home shard, jobs spill to sibling
// shards, the spill targets are keyed by enclave hand-off — and the owner
// session observes ZERO additional round trips: no re-attestation, no
// re-provisioning, no hand-off participation. Sessions migrate across
// shards without an owner round trip.
func TestFederationSpillOverZeroOwnerRPCs(t *testing.T) {
	_, sess, _ := dialFederationDeployment(t, federation.LocalSpec{
		Shards: 3, DevicesPerShard: 1,
		Timing:     core.Timing{RealJobLatency: 10 * time.Millisecond},
		Scheduler:  sched.Config{QueueDepth: 256},
		Federation: federation.Config{SpillHighWater: 2},
	})
	base := sess.HandshakeCalls()
	if base != 2 {
		t.Fatalf("handshake calls after attest = %d, want 2", base)
	}

	const jobs = 40
	w := accel.GenConv(4, 4, 1, 7)
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		spilled int
		homes   = map[string]int{}
		errs    []error
	)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, placement, err := sess.RunJob("hot-dataset", "Conv", w.Params, w.Input)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, err)
				return
			}
			homes[placement.Shard]++
			if placement.Spilled {
				spilled++
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		t.Fatal(err)
	}
	if spilled == 0 {
		t.Fatalf("hot session over a 1-device shard never spilled; placement: %v", homes)
	}
	if len(homes) < 2 {
		t.Fatalf("all jobs stayed on one shard: %v", homes)
	}

	st, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Handoffs == 0 {
		t.Error("spill target was never keyed by hand-off")
	}
	if st.Spilled == 0 {
		t.Error("federation counted no spills")
	}
	// The zero-owner-RPC property: migrating the session onto other shards
	// cost the owner nothing. Handshake count is unchanged and the owner
	// never served (or even saw) a hand-off message.
	if got := sess.HandshakeCalls(); got != base {
		t.Errorf("owner handshake calls grew %d -> %d during spill-over", base, got)
	}
	if got := sess.Calls("Federation.Handoff"); got != 0 {
		t.Errorf("owner participated in %d hand-offs", got)
	}
}

// TestFederationWireHandoff keys a brand-new recipient enclave entirely
// over the Federation.Handoff RPC — the path a peer shard gateway uses —
// and proves the adopted board serves sealed jobs under the owner's key.
func TestFederationWireHandoff(t *testing.T) {
	d, sess, addr := dialFederationDeployment(t, federation.LocalSpec{
		Shards: 2, DevicesPerShard: 1,
		Federation: federation.Config{SpillHighWater: 1e9},
	})

	// A new board on shard gw1's fabric finishes its instance-side boot.
	mgr := d.Managers[1]
	sys, err := mgr.Spawn()
	if err != nil {
		t.Fatal(err)
	}
	ver := client.New(sys.Expectations())
	nonce := ver.NewNonce()
	quote, err := sys.BootAndQuote(nonce)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.VerifyQuote(ver, nonce, quote); err != nil {
		t.Fatal(err)
	}

	// The shard gateway relays the enclave's key request to the federation
	// over plain RPC and feeds the grant back. No owner anywhere.
	req, err := sys.BeginAdoptDataKey(sys.User.Measurement())
	if err != nil {
		t.Fatal(err)
	}
	c, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var grant HandoffGrant
	wireReq := HandoffRequest{Report: req.Report, RecipientPub: req.RecipientPub}
	if err := c.Call("Federation.Handoff", wireReq, &grant); err != nil {
		t.Fatal(err)
	}
	if err := sys.FinishAdoptDataKey(userappGrant(grant)); err != nil {
		t.Fatal(err)
	}
	if !sys.Booted() {
		t.Fatal("recipient not booted after wire hand-off")
	}
	if err := mgr.Adopt(sys); err != nil {
		t.Fatal(err)
	}

	// The adopted board serves jobs sealed under the key the owner
	// provisioned to the root shard only.
	w := accel.GenConv(4, 4, 1, 99)
	sess.mu.Lock()
	dk := sess.dataKey
	sess.mu.Unlock()
	sealed, err := cryptoutil.Seal(dk, w.Input, []byte("job-input"))
	if err != nil {
		t.Fatal(err)
	}
	sealedOut, err := mgr.Scheduler().SubmitSealedOpts("Conv", w.Params, sealed, sched.SubmitOptions{Class: sched.ClassStandard}).Wait()
	if err != nil {
		t.Fatal(err)
	}
	out, err := cryptoutil.Open(dk, sealedOut, []byte("job-output"))
	if err != nil {
		t.Fatalf("output does not open under the owner's key: %v", err)
	}
	ref, err := w.Kernel.Compute(w.Params, w.Input)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(ref) {
		t.Fatal("wire-handed-off board computed a wrong result")
	}

	// A second replayed grant must be refused: the recipient is booted.
	if err := sys.FinishAdoptDataKey(userappGrant(grant)); err == nil {
		t.Fatal("replayed grant accepted by a booted recipient")
	}
}
