package remote

import (
	"bytes"
	"testing"
	"time"

	"salus/internal/accel"
	"salus/internal/client"
	"salus/internal/core"
	"salus/internal/fleet"
	"salus/internal/fpga"
	"salus/internal/manufacturer"
	"salus/internal/rpc"
	"salus/internal/sched"
)

// fleetDeployment wires the elastic stack: one RPC manufacturer shared by
// the fleet, a fleet manager, and the fleet gateway on top.
type fleetDeployment struct {
	mgr     *fleet.Manager
	systems []*core.System
	srv     *rpc.Server
	addr    string
}

func newFleetDeployment(t testing.TB, k int) *fleetDeployment {
	t.Helper()
	mfr, err := manufacturer.New()
	if err != nil {
		t.Fatal(err)
	}
	mfrSrv, mfrAddr, err := ServeManufacturer(mfr, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mfrSrv.Close() })
	kc, err := DialManufacturer(mfrAddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { kc.Close() })

	mgr, err := fleet.New(fleet.Config{
		Kernel:       accel.Conv{},
		DNAPrefix:    "ELFL",
		Manufacturer: mfr,
		KeyService:   kc,
		DrainTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	srv, systems, addr, err := ServeFleet(mgr, k, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return &fleetDeployment{mgr: mgr, systems: systems, srv: srv, addr: addr}
}

func (d *fleetDeployment) expectations() []client.Expectations {
	exps := make([]client.Expectations, len(d.systems))
	for i, sys := range d.systems {
		exps[i] = sys.Expectations()
	}
	return exps
}

func (d *fleetDeployment) session(t testing.TB) *ClusterSession {
	t.Helper()
	sess, err := DialCluster(d.addr, d.expectations())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	if err := sess.Attest(); err != nil {
		t.Fatal(err)
	}
	return sess
}

func runFleetJob(t testing.TB, sess *ClusterSession, seed int64) {
	t.Helper()
	w := accel.GenConv(4, 4, 1, seed)
	ref, _ := w.Kernel.Compute(w.Params, w.Input)
	out, err := sess.RunJob(w.Kernel.Name(), w.Params, w.Input)
	if err != nil {
		t.Fatalf("job: %v", err)
	}
	if !bytes.Equal(out, ref) {
		t.Fatal("fleet gateway output diverges from reference")
	}
}

// TestFleetGatewayScaleUpAndDown attests a 2-board fleet, grows it to 4
// without any further owner round (sibling hand-off inside the host),
// shrinks back, and checks jobs flow correctly throughout.
func TestFleetGatewayScaleUpAndDown(t *testing.T) {
	d := newFleetDeployment(t, 2)
	sess := d.session(t)
	runFleetJob(t, sess, 1)

	before := d.mgr.PreparedStats()
	grown, err := sess.Scale(2)
	if err != nil {
		t.Fatalf("scale up: %v", err)
	}
	if len(grown.Added) != 2 || len(grown.Devices) != 4 {
		t.Fatalf("scale up added %v, fleet %d devices", grown.Added, len(grown.Devices))
	}
	// Growth never re-ran the manipulation toolchain and never re-attested
	// through the owner: the new boards hit the prepared cache and took the
	// key from a sibling enclave.
	after := d.mgr.PreparedStats()
	if after.Manipulations != before.Manipulations {
		t.Errorf("scale-up re-ran manipulation (%d → %d)", before.Manipulations, after.Manipulations)
	}
	if after.ManipulationHits != before.ManipulationHits+2 {
		t.Errorf("scale-up missed the prepared cache (%d → %d hits)", before.ManipulationHits, after.ManipulationHits)
	}
	if d.mgr.Key() != nil {
		t.Error("gateway-side manager learned the data key")
	}
	for i := 0; i < 8; i++ {
		runFleetJob(t, sess, int64(i))
	}

	shrunk, err := sess.Scale(-1)
	if err != nil {
		t.Fatalf("scale down: %v", err)
	}
	if len(shrunk.Removed) != 1 || len(shrunk.Devices) != 3 {
		t.Fatalf("scale down removed %v, fleet %d devices", shrunk.Removed, len(shrunk.Devices))
	}
	runFleetJob(t, sess, 42)

	stats, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Errorf("owner sees %d devices, want 3", len(stats))
	}
}

// TestFleetGatewayDrainRemove decommissions one named board through the
// RPC plane and checks membership and serving survive.
func TestFleetGatewayDrainRemove(t *testing.T) {
	d := newFleetDeployment(t, 3)
	sess := d.session(t)
	target := d.systems[1].Device.DNA()

	devices, err := sess.DrainDevice(target, 5*time.Second, true)
	if err != nil {
		t.Fatalf("drain+remove: %v", err)
	}
	if len(devices) != 2 {
		t.Fatalf("fleet has %d devices after remove, want 2", len(devices))
	}
	for _, ds := range devices {
		if ds.DNA == target {
			t.Error("removed board still in stats")
		}
	}
	if d.mgr.System(target) != nil {
		t.Error("removed board still a fleet member")
	}
	runFleetJob(t, sess, 9)

	if _, err := sess.DrainDevice("NO-SUCH-DNA", time.Second, false); err == nil {
		t.Error("drain of unknown device succeeded")
	}
}

// TestFleetGatewayScaleBeforeAttestFails: growth needs a booted donor, so a
// fleet that was never attested/provisioned must refuse to scale.
func TestFleetGatewayScaleBeforeAttestFails(t *testing.T) {
	d := newFleetDeployment(t, 2)
	sess, err := DialCluster(d.addr, d.expectations())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Scale(1); err == nil {
		t.Fatal("scale of an unattested fleet succeeded")
	}
}

func TestShrinkOrderPrefersDeadBoards(t *testing.T) {
	stats := []sched.DeviceStats{
		{DNA: "A", Queued: 0},
		{DNA: "B", Quarantined: true},
		{DNA: "C", Queued: 5},
		{DNA: "D", Quarantined: true, Permanent: true},
	}
	got := shrinkOrder(stats, 3)
	want := []fpga.DNA{"D", "B", "A"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shrink order = %v, want %v", got, want)
		}
	}
	if n := len(shrinkOrder(stats, 10)); n != 4 {
		t.Errorf("over-asked shrink returned %d victims, want 4", n)
	}
}
