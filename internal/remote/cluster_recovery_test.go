package remote

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"salus/internal/accel"
	"salus/internal/client"
	"salus/internal/core"
	"salus/internal/cryptoutil"
	"salus/internal/rpc"
)

func TestClusterStatsNotBlockedByInFlightJob(t *testing.T) {
	// Acceptance for the concurrent serving path: a Cluster.Stats call must
	// complete while a Cluster.RunJob with real device latency is still in
	// flight on the SAME connection. Under the old serial transport the
	// Stats reply would queue behind the job's.
	const jobLatency = 300 * time.Millisecond
	d := newClusterDeploymentTiming(t, 2, accel.Conv{}, core.Timing{RealJobLatency: jobLatency})
	sess, err := DialCluster(d.addr, d.expectations())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Attest(); err != nil {
		t.Fatal(err)
	}

	w := accel.GenConv(4, 4, 1, 7)
	want, err := w.Kernel.Compute(w.Params, w.Input)
	if err != nil {
		t.Fatal(err)
	}
	jobOut := make(chan []byte, 1)
	jobErr := make(chan error, 1)
	jobDone := make(chan time.Time, 1)
	go func() {
		out, err := sess.RunJob("Conv", w.Params, w.Input)
		jobDone <- time.Now()
		jobOut <- out
		jobErr <- err
	}()
	//lint:allow test-sleep generous margin for the job request to reach the gateway and occupy the device
	time.Sleep(40 * time.Millisecond) // the job request is on the wire, device busy

	start := time.Now()
	stats, err := sess.Stats()
	statsDone := time.Now()
	if err != nil {
		t.Fatalf("Stats while job in flight: %v", err)
	}
	if len(stats) != 2 {
		t.Errorf("Stats saw %d devices, want 2", len(stats))
	}
	if d := statsDone.Sub(start); d > jobLatency/2 {
		t.Errorf("Stats took %v behind a %v job: head-of-line blocked", d, jobLatency)
	}
	jobAt := <-jobDone
	if !statsDone.Before(jobAt) {
		t.Error("Stats finished after the in-flight job: no overlap on the shared connection")
	}
	if err := <-jobErr; err != nil {
		t.Fatalf("in-flight job: %v", err)
	}
	if out := <-jobOut; !bytes.Equal(out, want) {
		t.Error("job output diverges from reference")
	}
}

func TestClusterSessionSurvivesGatewayRestart(t *testing.T) {
	// The gateway restarts on the same address (rolling deploy); the
	// session's connection is poisoned with rpc.ErrBroken but the next call
	// re-dials and succeeds. The data key survives the reconnect — no
	// re-attestation is needed, because nothing secret lives in the
	// connection.
	d := newClusterDeployment(t, 2, accel.Conv{})
	sess, err := DialCluster(d.addr, d.expectations())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Attest(); err != nil {
		t.Fatal(err)
	}
	w := accel.GenConv(4, 4, 1, 21)
	want, err := w.Kernel.Compute(w.Params, w.Input)
	if err != nil {
		t.Fatal(err)
	}
	if out, err := sess.RunJob("Conv", w.Params, w.Input); err != nil || !bytes.Equal(out, want) {
		t.Fatalf("job before restart: %v", err)
	}

	d.srv.Close()
	// Rebind the same address; retry briefly while the OS releases the port.
	var srv2 *rpc.Server
	deadline := time.Now().Add(2 * time.Second)
	for {
		srv2, _, err = ServeCluster(d.systems, d.sch, d.addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", d.addr, err)
		}
		//lint:allow test-sleep poll interval inside a deadline-bounded rebind loop; the sleep only paces redial attempts
		time.Sleep(20 * time.Millisecond)
	}
	defer srv2.Close()

	out, err := sess.RunJob("Conv", w.Params, w.Input)
	if err != nil {
		t.Fatalf("job after restart: %v", err)
	}
	if !bytes.Equal(out, want) {
		t.Error("post-restart job output diverges from reference")
	}
	if sess.Redials() < 1 {
		t.Errorf("Redials() = %d, want >= 1 after a gateway restart", sess.Redials())
	}
}

func TestClusterBootProvisionReplaySafe(t *testing.T) {
	// Drive the owner protocol by hand over a raw RPC client, replaying each
	// handshake step the way a client whose connection died mid-flight
	// would. Replays with identical requests succeed (and never
	// double-register a device); conflicting replays are refused.
	d := newClusterDeployment(t, 3, accel.Conv{})
	exps := d.expectations()
	c, err := rpc.Dial(d.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	nonce := client.New(exps[0]).NewNonce()
	var boot1, boot2 ClusterBootResponse
	if err := c.Call("Cluster.Boot", ClusterBootRequest{Nonce: nonce}, &boot1); err != nil {
		t.Fatal(err)
	}
	// Replay under the same nonce: the cached quotes come back verbatim.
	if err := c.Call("Cluster.Boot", ClusterBootRequest{Nonce: nonce}, &boot2); err != nil {
		t.Fatalf("replayed boot: %v", err)
	}
	j1, _ := json.Marshal(boot1)
	j2, _ := json.Marshal(boot2)
	if !bytes.Equal(j1, j2) {
		t.Error("replayed boot returned different quotes")
	}
	// A different nonce is a conflicting replay, not a second handshake.
	other := client.New(exps[0]).NewNonce()
	err = c.Call("Cluster.Boot", ClusterBootRequest{Nonce: other}, nil)
	if err == nil || !strings.Contains(err.Error(), "different nonce") {
		t.Errorf("conflicting boot nonce: err = %v, want different-nonce rejection", err)
	}
	// Prefix-probe regression for the constant-time compare (salus-vet
	// ct-compare seed finding): a nonce sharing a long prefix with the
	// real one, a truncation, and an extension must all be rejected —
	// cryptoutil.ConstantTimeEqual is length-strict and the gateway must
	// not treat near-matches differently from full mismatches.
	probe := append([]byte(nil), nonce...)
	probe[len(probe)-1] ^= 0x01
	for name, n := range map[string][]byte{
		"prefix-probe": probe,
		"truncated":    nonce[:len(nonce)-1],
		"extended":     append(append([]byte(nil), nonce...), 0x00),
	} {
		if err := c.Call("Cluster.Boot", ClusterBootRequest{Nonce: n}, nil); err == nil || !strings.Contains(err.Error(), "different nonce") {
			t.Errorf("%s nonce: err = %v, want different-nonce rejection", name, err)
		}
	}

	// Verify every quote and seal one shared key per device, as Attest does.
	key := cryptoutil.RandomKey(16)
	req := ClusterProvisionRequest{Provisions: make([]ProvisionRequest, len(exps))}
	for i, q := range boot1.Quotes {
		pub, err := client.New(exps[i]).VerifyRAResponse(nonce, q)
		if err != nil {
			t.Fatalf("device %d quote: %v", i, err)
		}
		senderPub, sealed, err := client.ProvisionDataKey(pub, key)
		if err != nil {
			t.Fatal(err)
		}
		req.Provisions[i] = ProvisionRequest{SenderPub: senderPub, Sealed: sealed}
	}
	if err := c.Call("Cluster.Provision", req, nil); err != nil {
		t.Fatal(err)
	}
	// Byte-identical replay succeeds without re-provisioning anything.
	if err := c.Call("Cluster.Provision", req, nil); err != nil {
		t.Fatalf("replayed provision: %v", err)
	}
	if got := len(d.sch.Stats()); got != len(exps) {
		t.Errorf("scheduler has %d devices after replayed provision, want %d", got, len(exps))
	}
	// Different key material is refused.
	bad := ClusterProvisionRequest{Provisions: make([]ProvisionRequest, len(exps))}
	for i, q := range boot1.Quotes {
		pub, _ := client.New(exps[i]).VerifyRAResponse(nonce, q)
		senderPub, sealed, err := client.ProvisionDataKey(pub, cryptoutil.RandomKey(16))
		if err != nil {
			t.Fatal(err)
		}
		bad.Provisions[i] = ProvisionRequest{SenderPub: senderPub, Sealed: sealed}
	}
	err = c.Call("Cluster.Provision", bad, nil)
	if err == nil || !strings.Contains(err.Error(), "different key material") {
		t.Errorf("conflicting provision: err = %v, want different-key-material rejection", err)
	}

	// The handshake actually worked: a sealed job round-trips.
	w := accel.GenConv(4, 4, 1, 33)
	want, err := w.Kernel.Compute(w.Params, w.Input)
	if err != nil {
		t.Fatal(err)
	}
	sealedIn, err := cryptoutil.Seal(key, w.Input, []byte("job-input"))
	if err != nil {
		t.Fatal(err)
	}
	var resp JobResponse
	if err := c.Call("Cluster.RunJob", JobRequest{Kernel: "Conv", Params: w.Params, SealedInput: sealedIn}, &resp); err != nil {
		t.Fatal(err)
	}
	out, err := cryptoutil.Open(key, resp.SealedOutput, []byte("job-output"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want) {
		t.Error("sealed job output diverges from reference")
	}
}
