package remote

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"salus/internal/core"
	"salus/internal/fleet"
	"salus/internal/fpga"
	"salus/internal/rpc"
	"salus/internal/sched"
)

// --- Elastic fleet gateway ---------------------------------------------------
//
// The elastic analogue of the cluster gateway: the same Boot/Provision
// handshake and job plane, plus Scale and Drain RPCs that change pool
// membership while the gateway keeps serving.
//
// Security of growth without a client round trip: the data owner attested
// and provisioned the initial boards. A board added by Cluster.Scale boots
// the same CL (the fleet's prepared-bitstream cache pins one digest) and
// receives the data key only through the sibling enclave hand-off
// (core.AdoptDataKeyFrom): an already-attested user enclave releases the
// key solely to a local enclave on the same platform with an identical
// measurement, over a report-bound ephemeral channel. The host brokers
// ciphertext; it can deny growth, never mint a rogue member. The owner can
// audit membership at any time via Cluster.Stats.

// ScaleRequest asks the fleet to grow (Delta > 0) or shrink (Delta < 0).
type ScaleRequest struct {
	Delta int `json:"delta"`
}

// ScaleResponse reports the membership change actually applied.
type ScaleResponse struct {
	Added   []fpga.DNA          `json:"added,omitempty"`
	Removed []fpga.DNA          `json:"removed,omitempty"`
	Devices []sched.DeviceStats `json:"devices"`
}

// DrainDeviceRequest drains one board; with Remove set it is also
// decommissioned once (bounded) draining finishes.
type DrainDeviceRequest struct {
	DNA           fpga.DNA `json:"dna"`
	TimeoutMillis int64    `json:"timeout_millis"`
	Remove        bool     `json:"remove"`
}

// ServeFleet spawns k member systems from the fleet manager and exposes the
// cluster gateway plus the elastic Scale/Drain plane on addr. The returned
// systems (in handshake order) let the CSP publish per-device expectations;
// the data owner attests them through the ordinary ClusterSession.Attest.
// The manager must be empty and is consumed: the gateway adopts each system
// after the owner's provisioning completes, and Scale/Drain mutate its
// membership afterwards.
func ServeFleet(m *fleet.Manager, k int, addr string, opts ...GatewayOption) (*rpc.Server, []*core.System, string, error) {
	if k <= 0 {
		return nil, nil, "", fmt.Errorf("remote: fleet of %d devices", k)
	}
	var o gatewayOptions
	for _, opt := range opts {
		opt(&o)
	}
	systems, err := m.SpawnN(k)
	if err != nil {
		return nil, nil, "", err
	}
	srv := rpc.NewServer()
	handleClusterHandshake(srv, systems, m.Adopt)
	handleClusterServing(srv, m.Scheduler(), o.admission)

	srv.Handle("Cluster.Scale", rpc.Typed(func(in ScaleRequest) (ScaleResponse, error) {
		var resp ScaleResponse
		switch {
		case in.Delta > 0:
			for i := 0; i < in.Delta; i++ {
				dna, err := m.Add()
				if err != nil {
					resp.Devices = m.Stats()
					return resp, fmt.Errorf("grew by %d of %d: %w", i, in.Delta, err)
				}
				resp.Added = append(resp.Added, dna)
			}
		case in.Delta < 0:
			victims := shrinkOrder(m.Stats(), -in.Delta)
			for i, dna := range victims {
				if _, err := m.Remove(dna); err != nil {
					resp.Devices = m.Stats()
					return resp, fmt.Errorf("shrank by %d of %d: %w", i, -in.Delta, err)
				}
				resp.Removed = append(resp.Removed, dna)
			}
		}
		resp.Devices = m.Stats()
		return resp, nil
	}))
	srv.Handle("Cluster.Drain", rpc.Typed(func(in DrainDeviceRequest) (ClusterStatsResponse, error) {
		timeout := time.Duration(in.TimeoutMillis) * time.Millisecond
		err := m.Scheduler().Drain(in.DNA, timeout)
		// A drain timeout does not block decommissioning (matching
		// fleet.Remove's semantics); anything else does.
		if err != nil && !(in.Remove && errors.Is(err, sched.ErrDrainTimeout)) {
			return ClusterStatsResponse{Devices: m.Stats()}, err
		}
		if in.Remove {
			if _, err := m.Remove(in.DNA); err != nil {
				return ClusterStatsResponse{Devices: m.Stats()}, err
			}
		}
		return ClusterStatsResponse{Devices: m.Stats()}, nil
	}))

	bound, err := srv.Listen(addr)
	if err != nil {
		return nil, nil, "", err
	}
	return srv, systems, bound, nil
}

// shrinkOrder picks n decommission victims: permanently quarantined boards
// first, then quarantined, then the least-loaded healthy boards. Stats
// arrive one row per reconfigurable partition; a board's health is its
// sickest RP, its load the sum over its RPs, and each board is named once
// no matter how many partitions it serves.
func shrinkOrder(stats []sched.DeviceStats, n int) []fpga.DNA {
	type board struct {
		dna    fpga.DNA
		rank   int
		queued int64
	}
	rank := func(ds sched.DeviceStats) int {
		switch {
		case ds.Permanent:
			return 0
		case ds.Quarantined:
			return 1
		default:
			return 2
		}
	}
	byDNA := make(map[fpga.DNA]*board)
	var boards []*board
	for _, ds := range stats {
		b := byDNA[ds.DNA]
		if b == nil {
			b = &board{dna: ds.DNA, rank: rank(ds)}
			byDNA[ds.DNA] = b
			boards = append(boards, b)
		}
		if r := rank(ds); r < b.rank {
			b.rank = r
		}
		b.queued += ds.Queued
	}
	sort.SliceStable(boards, func(i, j int) bool {
		if boards[i].rank != boards[j].rank {
			return boards[i].rank < boards[j].rank
		}
		return boards[i].queued < boards[j].queued
	})
	if n > len(boards) {
		n = len(boards)
	}
	out := make([]fpga.DNA, n)
	for i := 0; i < n; i++ {
		out[i] = boards[i].dna
	}
	return out
}

// Scale asks the gateway to grow or shrink the fleet. Growth needs no new
// attestation round: the data key reaches new boards only via the sibling
// enclave hand-off (see the package comment above ScaleRequest), and the
// returned stats let the owner audit the resulting membership.
func (s *ClusterSession) Scale(delta int) (ScaleResponse, error) {
	var resp ScaleResponse
	if err := s.call("Cluster.Scale", ScaleRequest{Delta: delta}, &resp); err != nil {
		return resp, err
	}
	return resp, nil
}

// DrainDevice stops routing to one board and waits (bounded by timeout;
// zero waits indefinitely) for its accepted jobs; with remove set the board
// is then decommissioned.
func (s *ClusterSession) DrainDevice(dna fpga.DNA, timeout time.Duration, remove bool) ([]sched.DeviceStats, error) {
	var resp ClusterStatsResponse
	req := DrainDeviceRequest{DNA: dna, TimeoutMillis: timeout.Milliseconds(), Remove: remove}
	if err := s.call("Cluster.Drain", req, &resp); err != nil {
		return nil, err
	}
	return resp.Devices, nil
}
