package remote

import (
	"bytes"
	"testing"

	"salus/internal/accel"
)

// TestClusterRunBatch drives the whole batched data path end to end over
// real sockets: one RPC frame carries every sealed job up, the scheduler
// runs them through core's batched secure path, and one frame carries
// every sealed result back.
func TestClusterRunBatch(t *testing.T) {
	d := newClusterDeployment(t, 2, accel.Conv{})
	sess, err := DialCluster(d.addr, d.expectations())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Attest(); err != nil {
		t.Fatal(err)
	}

	const jobs = 11
	inputs := make([]BatchInput, jobs)
	want := make([][]byte, jobs)
	for i := range inputs {
		w := accel.GenConv(4+i%3, 4, 1, int64(i))
		inputs[i] = BatchInput{Params: w.Params, Input: w.Input}
		want[i], err = w.Kernel.Compute(w.Params, w.Input)
		if err != nil {
			t.Fatal(err)
		}
	}
	results, err := sess.RunBatch("Conv", inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != jobs {
		t.Fatalf("%d results for %d jobs", len(results), jobs)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if !bytes.Equal(r.Output, want[i]) {
			t.Errorf("job %d output diverges from reference", i)
		}
	}

	var total uint64
	for _, ds := range d.sch.Stats() {
		total += ds.Completed
	}
	if total != jobs {
		t.Errorf("cluster completed %d jobs, want %d", total, jobs)
	}
}

// TestClusterRunBatchPerJobErrors: a job too large for the pipelined
// buffer half fails alone — its batch-mates still run, and the failure
// arrives as that job's error, not a whole-batch rejection.
func TestClusterRunBatchPerJobErrors(t *testing.T) {
	d := newClusterDeployment(t, 1, accel.Conv{})
	sess, err := DialCluster(d.addr, d.expectations())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Attest(); err != nil {
		t.Fatal(err)
	}

	w := accel.GenConv(4, 4, 1, 7)
	results, err := sess.RunBatch("Conv", []BatchInput{
		{Params: w.Params, Input: w.Input},
		// Slot (input + doubled output capacity) exceeds the 8 MiB half.
		{Params: [4]uint64{4096, 256, 4, 0}, Input: make([]byte, 4096*256*4)},
		{Params: w.Params, Input: w.Input},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[1].Err == nil {
		t.Error("implausible job did not fail")
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Fatalf("sibling job %d sunk: %v", i, results[i].Err)
		}
	}
}

// TestClusterRunBatchRequiresAttestation mirrors the single-job guard.
func TestClusterRunBatchRequiresAttestation(t *testing.T) {
	d := newClusterDeployment(t, 1, accel.Conv{})
	sess, err := DialCluster(d.addr, d.expectations())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	w := accel.GenConv(4, 4, 1, 1)
	if _, err := sess.RunBatch("Conv", []BatchInput{{Params: w.Params, Input: w.Input}}); err == nil {
		t.Fatal("unattested RunBatch succeeded")
	}
}
