// Multi-tenant spatial-sharing gate: the acceptance check for RP-granular
// scheduling (§4.7). On identical hardware — K boards with a fixed
// per-job device latency — carving each board into R reconfigurable
// partitions must serve a multi-tenant job mix at >= 2x the aggregate
// goodput of board-granular scheduling, because co-resident partitions
// compute concurrently while board-granular serving leaves R-1 partitions'
// worth of silicon idle.
//
// Run via `make bench-multitenant` (SALUS_BENCH_SMOKE=1) — wall-clock
// assertions do not belong in ordinary `go test ./...` runs.
package salus_test

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"salus/internal/accel"
	"salus/internal/core"
	"salus/internal/fleet"
	"salus/internal/sched"
)

// buildSpatialFleet boots K boards carved into R partitions each, with a
// 200µs device latency so capacity is device-bound — the regime where
// more schedulable partitions must mean more goodput.
func buildSpatialFleet(t *testing.T, boards, rps int) *fleet.Manager {
	t.Helper()
	timing := core.FastTiming()
	timing.RealJobLatency = 200 * time.Microsecond
	m, err := fleet.New(fleet.Config{
		Kernel:       accel.Conv{},
		DNAPrefix:    fmt.Sprintf("MT%d", rps),
		Timing:       timing,
		RPsPerDevice: rps,
		Scheduler:    sched.Config{QueueDepth: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	if err := m.BootFleet(boards); err != nil {
		t.Fatal(err)
	}
	return m
}

// driveTenantMix submits n jobs spread across a population of tenants
// (admission bounded by inflight) and returns the window's goodput.
func driveTenantMix(t *testing.T, m *fleet.Manager, n, tenants, inflight int) float64 {
	t.Helper()
	w := accel.GenConv(4, 4, 1, 42)
	sem := make(chan struct{}, inflight)
	var wg sync.WaitGroup
	var failed atomic.Uint64
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fut := m.Scheduler().SubmitOpts(w, sched.SubmitOptions{
				Tenant: fmt.Sprintf("tenant-%d", i%tenants),
				Class:  sched.ClassStandard,
			})
			if _, err := fut.Wait(); err != nil {
				failed.Add(1)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if got := failed.Load(); got > 0 {
		t.Fatalf("%d of %d tenant jobs failed", got, n)
	}
	return float64(n) / elapsed.Seconds()
}

func TestMultiTenantGate(t *testing.T) {
	if os.Getenv("SALUS_BENCH_SMOKE") == "" {
		t.Skip("set SALUS_BENCH_SMOKE=1 to run the multi-tenant gate (wall-clock assertions)")
	}
	const (
		boards    = 2
		rps       = 4
		tenants   = 16
		jobs      = 4000
		inflight  = 64
		minuplift = 2.0
	)

	// Baseline: the same boards, board-granular — one schedulable unit per
	// die, the pre-§4.7 shape.
	board := buildSpatialFleet(t, boards, 1)
	baseRate := driveTenantMix(t, board, jobs, tenants, inflight)

	// Spatial sharing: identical hardware, R partitions per die, each an
	// independent serving unit with its own sealed channel and key epoch.
	spatial := buildSpatialFleet(t, boards, rps)
	if got := len(spatial.Stats()); got != boards*rps {
		t.Fatalf("spatial fleet serves %d partitions, want %d", got, boards*rps)
	}
	spatialRate := driveTenantMix(t, spatial, jobs, tenants, inflight)

	t.Logf("multi-tenant goodput: board-granular %.0f jobs/s, %d RPs/board %.0f jobs/s (%.2fx)",
		baseRate, rps, spatialRate, spatialRate/baseRate)
	if spatialRate < minuplift*baseRate {
		t.Errorf("RP-granular goodput %.0f jobs/s is %.2fx board-granular %.0f jobs/s, want >= %.1fx",
			spatialRate, spatialRate/baseRate, baseRate, minuplift)
	}

	// Every partition took part: spatial sharing that funnels the mix into
	// one RP per board would pass a latency fluke, not the capacity claim.
	for _, ds := range spatial.Stats() {
		if ds.Completed == 0 {
			t.Errorf("partition %s/rp%d served no jobs during the window", ds.DNA, ds.RP)
		}
	}
}
