GO ?= go

.PHONY: all build test vet race tier1 bench bench-sched clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Full race-detector sweep: vet first so obvious mistakes fail fast.
race:
	$(GO) vet ./... && $(GO) test -race ./...

# The roadmap's tier-1 gate, plus the concurrency-sensitive packages
# (scheduler, core job path) under the race detector.
tier1:
	$(GO) build ./... && $(GO) test ./...
	$(GO) test -race ./internal/sched ./internal/core

bench:
	$(GO) test -bench=. -benchmem ./...

# Multi-device scheduler throughput (serial baseline vs 1/2/4 devices).
bench-sched:
	$(GO) test -run xxx -bench SchedulerThroughput -benchtime 100x .

clean:
	$(GO) clean ./...
