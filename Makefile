GO ?= go

.PHONY: all build test vet race tier1 ci fmt-check bench bench-smoke bench-sched bench-degraded bench-fleet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Full race-detector sweep: vet first so obvious mistakes fail fast.
race:
	$(GO) vet ./... && $(GO) test -race ./...

# The roadmap's tier-1 gate, plus the concurrency-sensitive packages
# (scheduler, core job path) under the race detector.
tier1:
	$(GO) build ./... && $(GO) test ./...
	$(GO) test -race ./internal/sched ./internal/core

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The one-stop verification entry point: formatting, vet, the tier-1 gate,
# and the failure-path packages (rpc multiplexing, scheduler quarantine and
# lifecycle, fleet elasticity, cluster reconnect) under the race detector.
ci: fmt-check vet
	$(GO) build ./... && $(GO) test ./...
	$(GO) test -race ./internal/fleet ./internal/sched ./internal/rpc ./internal/remote ./internal/core

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark: fast enough for CI, and keeps the
# bench suite from silently rotting.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Multi-device scheduler throughput (serial baseline vs 1/2/4 devices).
bench-sched:
	$(GO) test -run xxx -bench SchedulerThroughput -benchtime 100x .

# Degraded pool: 3 devices with one permanently broken vs 2 healthy.
bench-degraded:
	$(GO) test -run xxx -bench SchedulerDegradedPool -benchtime 100x .

# Fleet elasticity: serial vs parallel vs cached 8-board boot, and hot
# add/remove cycles under load.
bench-fleet:
	$(GO) test -run xxx -bench 'FleetBoot|FleetHotAdd' -benchtime 5x .

clean:
	$(GO) clean ./...
