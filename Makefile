GO ?= go

# Packages whose statement coverage is gated in CI (the observability layer
# and the two subsystems its health signals come from), and the floor they
# must clear.
COVER_PKGS = salus/internal/metrics salus/internal/sched salus/internal/fleet salus/internal/place
COVER_FLOOR = 75

.PHONY: all build test vet lint race tier1 ci cover cover-check fmt-check bench bench-smoke bench-sched bench-sched-gate bench-overload bench-degraded bench-fleet bench-metrics bench-federation bench-multitenant clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Domain-specific invariants go vet cannot see: constant-time auth
# compares, no blocking under a held mutex, gauge pairing, errors.Is
# discipline, the sealed host<->CL boundary, and test-sleep hygiene.
# Suppressions require an in-source reason (see cmd/salus-vet).
lint:
	$(GO) run ./cmd/salus-vet ./...

# Full race-detector sweep: vet first so obvious mistakes fail fast.
race:
	$(GO) vet ./... && $(GO) test -race ./...

# The roadmap's tier-1 gate, plus the concurrency-sensitive packages
# (scheduler, core job path) under the race detector.
tier1:
	$(GO) build ./... && $(GO) test ./...
	$(GO) test -race ./internal/sched ./internal/core

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Per-package statement-coverage table for the whole module.
cover:
	@$(GO) test -cover ./... | awk '/coverage:/ { \
		pkg = ($$1 == "ok" || $$1 == "FAIL") ? $$2 : $$1; \
		cov = "-"; for (i = 1; i <= NF; i++) if ($$i ~ /%/) cov = $$i; \
		printf "%-40s %s\n", pkg, cov }'

# Enforce the coverage floor on the gated packages.
cover-check:
	@$(GO) test -coverprofile=/dev/null -cover $(COVER_PKGS) | awk -v floor=$(COVER_FLOOR) ' \
		/coverage:/ { \
			for (i = 1; i <= NF; i++) if ($$i ~ /%/) { sub(/%.*/, "", $$i); cov = $$i } \
			printf "%-30s %s%%\n", $$2, cov; \
			if (cov + 0 < floor) { bad = 1 } \
		} \
		END { if (bad) { print "coverage below " floor "% floor"; exit 1 } }'

# The one-stop verification entry point: formatting, vet, the tier-1 gate,
# the coverage floor on the observability-critical packages, a full-repo
# race sweep, and the metrics hot-path budget.
ci: fmt-check vet lint
	$(GO) build ./... && $(GO) test ./...
	$(MAKE) cover-check
	$(GO) test -race ./...
	$(MAKE) bench-metrics
	$(MAKE) bench-sched-gate
	$(MAKE) bench-overload
	$(MAKE) bench-federation
	$(MAKE) bench-multitenant

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark: fast enough for CI, and keeps the
# bench suite from silently rotting.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Multi-device scheduler throughput (serial baseline vs 1/2/4 devices,
# plus the same pool with metrics disabled — the <3% overhead comparison),
# the batched-vs-unbatched data-path comparison, and the acceptance gate:
# the batched path must clear 5x the 6.5 MB/s unbatched single-device
# baseline with an allocation-free seal/open hot path.
bench-sched: bench-sched-gate
	$(GO) test -run xxx -bench 'SchedulerThroughput|BatchedThroughput' -benchtime 100x .

bench-sched-gate:
	SALUS_BENCH_SMOKE=1 $(GO) test -run TestBatchedThroughputGate -v . | grep -E 'MB/s|ok|FAIL|PASS'

# Overload survival gate: at >= 10x-capacity offered ClassBatch load the
# pool must keep goodput >= 80% of calibrated capacity and hold the
# critical-class p99 within 20% of uncontended plus one head-of-line
# residual (see TestOverloadGate).
bench-overload:
	SALUS_BENCH_SMOKE=1 $(GO) test -run 'TestOverloadGate$$' -v . | grep -E 'capacity|overload|p99|ok|FAIL|PASS'

# Federation gate: 3 federated 2-device gateways must serve 100k+ concurrent
# client sessions at >= 2.5x a single gateway's aggregate goodput, and the
# routing ring must converge minimally on shard join/leave (join moves keys
# only onto the new shard; leave restores prior ownership exactly).
bench-federation:
	SALUS_BENCH_SMOKE=1 $(GO) test -run 'TestFederationGate$$' -v . | grep -E 'goodput|moved|hand-off|ok|FAIL|PASS'

# Multi-tenant spatial-sharing gate: on identical hardware (2 boards), 4
# RPs per board must serve a 16-tenant job mix at >= 2x the aggregate
# goodput of board-granular scheduling, with every partition taking work
# (see TestMultiTenantGate).
bench-multitenant:
	SALUS_BENCH_SMOKE=1 $(GO) test -run 'TestMultiTenantGate$$' -v . | grep -E 'goodput|partition|ok|FAIL|PASS'

# Degraded pool: 3 devices with one permanently broken vs 2 healthy.
bench-degraded:
	$(GO) test -run xxx -bench SchedulerDegradedPool -benchtime 100x .

# Fleet elasticity: serial vs parallel vs cached 8-board boot, and hot
# add/remove cycles under load.
bench-fleet:
	$(GO) test -run xxx -bench 'FleetBoot|FleetHotAdd' -benchtime 5x .

# Metrics hot-path smoke gate: one enabled counter+histogram record must
# stay under ~100ns/op with zero allocations (see TestHotPathBudget).
bench-metrics:
	SALUS_BENCH_SMOKE=1 $(GO) test -run TestHotPathBudget -v ./internal/metrics | grep -E 'ns/op|ok|FAIL|PASS'

clean:
	$(GO) clean ./...
