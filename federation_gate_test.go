// Federation gate: the acceptance check for the federated gateway tier.
// Three federated 2-device gateways must serve 100k+ concurrent client
// sessions at >= 2.5x the aggregate goodput of a single gateway with one
// shard's hardware, and the routing table must converge minimally on shard
// join/leave: a join moves keys only onto the new shard, a leave restores
// the exact prior ownership.
//
// Run via `make bench-federation` (SALUS_BENCH_SMOKE=1) — wall-clock
// assertions do not belong in ordinary `go test ./...` runs.
package salus_test

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"salus/internal/accel"
	"salus/internal/core"
	"salus/internal/cryptoutil"
	"salus/internal/federation"
	"salus/internal/sched"
)

// gateClient identifies one simulated client session.
func gateClient(i int) (tenant, key string) {
	return fmt.Sprintf("tenant-%d", i%997), fmt.Sprintf("dataset-%d", i)
}

// buildGateFederation assembles an owner-booted federation with a 100µs
// device latency so capacity is device-bound — the regime where adding
// shards must add goodput.
func buildGateFederation(t *testing.T, shards, devices int) *federation.LocalDeployment {
	t.Helper()
	timing := core.FastTiming()
	timing.RealJobLatency = 100 * time.Microsecond
	d, err := federation.BuildLocal(federation.LocalSpec{
		Shards:          shards,
		DevicesPerShard: devices,
		Kernel:          accel.Conv{},
		Timing:          timing,
		Scheduler:       sched.Config{QueueDepth: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// driveGateClients runs one job from each of n concurrent client sessions
// (each a goroutine holding its own tenant + data-key identity, admission
// bounded by inflight) and returns the serving window's goodput.
func driveGateClients(t *testing.T, d *federation.LocalDeployment, n, inflight int) float64 {
	t.Helper()
	w := accel.GenConv(4, 4, 1, 42)
	sealed, err := cryptoutil.Seal(d.Key, w.Input, []byte("job-input"))
	if err != nil {
		t.Fatal(err)
	}
	sem := make(chan struct{}, inflight)
	var wg sync.WaitGroup
	var failed atomic.Uint64
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			tenant, key := gateClient(i)
			res, err := d.Fed.Submit(tenant, key, "Conv", w.Params, sealed, sched.SubmitOptions{Class: sched.ClassStandard})
			if err != nil {
				failed.Add(1)
				return
			}
			if _, err := res.Future.Wait(); err != nil {
				failed.Add(1)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if got := failed.Load(); got > 0 {
		t.Fatalf("%d of %d client sessions failed", got, n)
	}
	return float64(n) / elapsed.Seconds()
}

func TestFederationGate(t *testing.T) {
	if os.Getenv("SALUS_BENCH_SMOKE") == "" {
		t.Skip("set SALUS_BENCH_SMOKE=1 to run the federation gate (wall-clock assertions)")
	}
	const (
		shards    = 3
		devices   = 2
		clients   = 100_000 // concurrent client sessions across the region
		inflight  = 1024
		minuplift = 2.5
	)

	// Baseline: a single gateway with one shard's hardware serving its fair
	// share of the client population.
	single := buildGateFederation(t, 1, devices)
	baseRate := driveGateClients(t, single, clients/shards, inflight)

	// The federated region serves the full population.
	fed := buildGateFederation(t, shards, devices)
	fedRate := driveGateClients(t, fed, clients, inflight)

	t.Logf("aggregate goodput: single %.0f jobs/s, federated %.0f jobs/s (%.2fx)",
		baseRate, fedRate, fedRate/baseRate)
	if fedRate < minuplift*baseRate {
		t.Errorf("federated goodput %.0f jobs/s is %.2fx the single gateway's %.0f jobs/s, want >= %.1fx",
			fedRate, fedRate/baseRate, baseRate, minuplift)
	}
	st := fed.Fed.Stats()
	if st.Routed+st.Spilled != clients {
		t.Errorf("federation served %d jobs for %d client sessions", st.Routed+st.Spilled, clients)
	}
	for _, sh := range st.Shards {
		if !sh.Keyed {
			t.Errorf("shard %s never keyed during the serving window", sh.ID)
		}
	}

	// Routing-table convergence on join: adding a shard moves keys only
	// ONTO the new shard, and only ~1/(n+1) of them.
	const sample = 3000
	before := make(map[string]string, sample)
	for i := 0; i < sample; i++ {
		tenant, key := gateClient(i)
		id, _, _, err := fed.Fed.Route(tenant, key)
		if err != nil {
			t.Fatal(err)
		}
		before[key] = id
	}
	epoch0 := fed.Fed.Ring().Epoch()
	if _, err := fed.JoinShard("gw3", "", devices); err != nil {
		t.Fatal(err)
	}
	if fed.Fed.Ring().Epoch() == epoch0 {
		t.Error("ring epoch did not advance on join")
	}
	moved := 0
	for i := 0; i < sample; i++ {
		tenant, key := gateClient(i)
		id, _, _, err := fed.Fed.Route(tenant, key)
		if err != nil {
			t.Fatal(err)
		}
		if id == before[key] {
			continue
		}
		if id != "gw3" {
			t.Fatalf("key %q moved %s -> %s on gw3 join: only the new shard's segment may move", key, before[key], id)
		}
		moved++
	}
	if moved == 0 || moved > sample/2 {
		t.Errorf("gw3 join moved %d of %d sampled keys, want ~%d", moved, sample, sample/(shards+1))
	}

	// The joiner actually serves: re-drive the moved segment's sessions and
	// require gw3 to have been keyed by hand-off and to have run jobs.
	handoffs0 := fed.Fed.Stats().Handoffs
	serveRate := driveGateClients(t, fed, sample, inflight)
	if serveRate <= 0 {
		t.Fatal("no goodput after join")
	}
	if got := fed.Fed.Stats().Handoffs; got != handoffs0+uint64(devices) {
		t.Errorf("hand-offs after join = %d, want %d (the joiner's %d boards keyed once each)",
			got, handoffs0+uint64(devices), devices)
	}

	// Convergence on leave: removing the joiner restores the exact prior
	// ownership for every sampled key.
	if err := fed.Fed.RemoveShard("gw3"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sample; i++ {
		tenant, key := gateClient(i)
		id, _, _, err := fed.Fed.Route(tenant, key)
		if err != nil {
			t.Fatal(err)
		}
		if id != before[key] {
			t.Fatalf("key %q maps to %s after join+leave, was %s: leave did not restore the segment", key, id, before[key])
		}
	}
}
