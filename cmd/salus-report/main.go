// Command salus-report regenerates the paper's entire evaluation in one
// run and writes a markdown report (default RESULTS.md): Table 1
// (executable comparison), Figure 8 + Table 5 (floorplan and utilisation),
// Table 3 (attack matrix), Table 6 + Figure 10 (runtime model), Table 2
// (attestation analogy), and — unless -skip-fig9 — the Figure 9 boot-time
// breakdown on a real U200-scale bitstream.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"salus"
	"salus/internal/accel"
	"salus/internal/compare"
	"salus/internal/core"
	"salus/internal/netlist"
	"salus/internal/smlogic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("salus-report: ")
	out := flag.String("o", "RESULTS.md", "output markdown file")
	skipFig9 := flag.Bool("skip-fig9", false, "skip the seconds-long U200-scale boot")
	flag.Parse()

	var b strings.Builder
	section := func(title string, body func() (string, error)) {
		fmt.Fprintf(&b, "## %s\n\n", title)
		text, err := body()
		if err != nil {
			log.Fatalf("%s: %v", title, err)
		}
		fmt.Fprintf(&b, "```\n%s```\n\n", ensureNL(text))
		fmt.Fprintln(os.Stderr, "done:", title)
	}

	b.WriteString("# Salus reproduction — regenerated evaluation\n\n")
	b.WriteString("Produced by `go run ./cmd/salus-report`. Paper-vs-measured commentary lives in EXPERIMENTS.md.\n\n")

	section("Table 1 — comparison with existing FPGA TEEs (executed)", func() (string, error) {
		rows, err := compare.RunTable1()
		if err != nil {
			return "", err
		}
		return compare.FormatTable1(rows), nil
	})

	section("Figure 8 — floor planning", func() (string, error) {
		return salus.U200Floorplan().String(), nil
	})

	section("Table 5 — resource utilisation breakdown", func() (string, error) {
		mods := make([]netlist.ModuleSpec, 0, 6)
		for _, k := range accel.Kernels() {
			mods = append(mods, k.Module())
		}
		mods = append(mods, smlogic.Module())
		return netlist.UtilizationReport(salus.U200, mods), nil
	})

	section("Table 2 — SGX local attestation vs Salus CL attestation", func() (string, error) {
		return core.Table2(), nil
	})

	section("Table 3 — protection of secrets (attack matrix)", func() (string, error) {
		rows := salus.RunTable3()
		for _, r := range rows {
			if !r.Protected {
				return "", fmt.Errorf("attack not blocked: %s", r.Attack)
			}
		}
		return salus.FormatTable3(rows), nil
	})

	c := salus.DefaultPerfConstants()
	section("Table 6 — TEE slowdowns", func() (string, error) {
		return salus.FormatTable6(salus.Table6(c)), nil
	})
	section("Figure 10 — workload speedups", func() (string, error) {
		return salus.FormatFigure10(salus.Figure10(c)), nil
	})

	if !*skipFig9 {
		section("Figure 9 — CL booting time (real U200-scale bitstream)", func() (string, error) {
			r, err := salus.RunFigure9("Conv")
			if err != nil {
				return "", err
			}
			return salus.FormatFigure9(r), nil
		})
	}

	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("report written:", *out)
}

func ensureNL(s string) string {
	if !strings.HasSuffix(s, "\n") {
		return s + "\n"
	}
	return s
}
