// Command salus-client is the data owner's side of a networked deployment:
// it loads the expectations published for a cloud instance, attests the
// whole heterogeneous platform with one cascaded-attestation round trip
// over TCP, provisions a data key, and offloads an encrypted job.
//
// When the expectations file holds a JSON array (written by salus-server
// -devices N), the client switches to cluster mode: it attests every device
// in the pool, provisions one shared data key, and fans -jobs sealed jobs
// out concurrently over a single multiplexed connection — polling the
// pool's per-device stats on that same connection while the jobs run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"salus"
	"salus/internal/client"
	"salus/internal/fpga"
	"salus/internal/remote"
	"salus/internal/sched"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("salus-client: ")
	if len(os.Args) > 1 && os.Args[1] == "fleet" {
		runFleet(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "top" {
		runTop(os.Args[2:])
		return
	}
	instAddr := flag.String("inst", "127.0.0.1:7002", "instance / cluster gateway address")
	expPath := flag.String("exp", "salus-expectations.json", "expectations file from salus-server")
	kernel := flag.String("kernel", "Conv", "kernel the instance deployed")
	jobs := flag.Int("jobs", 8, "cluster mode: number of sealed jobs")
	batch := flag.Bool("batch", false, "cluster mode: submit all -jobs in one batched RPC frame instead of one call per job")
	tenant := flag.String("tenant", "", "cluster mode: tenant name for gateway rate limiting")
	class := flag.String("class", "", "cluster mode: priority class (batch, standard, critical)")
	deadline := flag.Duration("deadline", 0, "cluster mode: per-job deadline; expired jobs are shed, never run late (0 disables)")
	flag.Parse()

	raw, err := os.ReadFile(*expPath)
	if err != nil {
		log.Fatal(err)
	}
	var qos *remote.QoS
	if *tenant != "" || *class != "" || *deadline > 0 {
		c, ok := salusClass(*class)
		if !ok {
			log.Fatalf("unknown class %q (want batch, standard, or critical)", *class)
		}
		qos = &remote.QoS{Tenant: *tenant, Class: c, Deadline: *deadline}
	}

	if bytes.HasPrefix(bytes.TrimSpace(raw), []byte("[")) {
		runCluster(raw, *instAddr, *kernel, *jobs, *batch, qos)
		return
	}
	if qos != nil {
		log.Fatal("-tenant/-class/-deadline need a cluster gateway (salus-server -devices N)")
	}

	var exp client.Expectations
	if err := json.Unmarshal(raw, &exp); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expecting: user enclave %s, SM enclave %s, CL digest %x..., device %s\n",
		exp.UserEnclave, exp.SMEnclave, exp.Digest[:8], exp.DNA)

	sess, err := remote.DialInstance(*instAddr, exp)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	if err := sess.Attest(); err != nil {
		log.Fatalf("platform NOT trusted: %v", err)
	}
	fmt.Println("platform attested in one round trip; data key provisioned")

	w, ok := salus.TestWorkload(*kernel, 7)
	if !ok {
		log.Fatalf("unknown kernel %q", *kernel)
	}
	out, err := sess.RunJob(*kernel, w.Params, w.Input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offloaded %s: %d input bytes -> %d output bytes (sealed both ways)\n",
		*kernel, len(w.Input), len(out))
}

// runFleet is the elastic-operations subcommand: scale the pool up or
// down, drain or decommission a named board, and inspect membership — all
// without re-attesting. Growth is safe without an owner round because new
// boards receive the data key only through the sibling enclave hand-off;
// the printed stats are the owner's membership audit.
func runFleet(args []string) {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	instAddr := fs.String("inst", "127.0.0.1:7002", "fleet gateway address")
	expPath := fs.String("exp", "salus-expectations.json", "expectations file from salus-server")
	scale := fs.Int("scale", 0, "grow (>0) or shrink (<0) the fleet by this many boards")
	drain := fs.String("drain", "", "DNA of a board to drain")
	remove := fs.Bool("remove", false, "with -drain: decommission the board after draining")
	timeout := fs.Duration("timeout", 30*time.Second, "with -drain: bound on waiting for in-flight jobs")
	fs.Parse(args)

	raw, err := os.ReadFile(*expPath)
	if err != nil {
		log.Fatal(err)
	}
	var exps []client.Expectations
	if err := json.Unmarshal(raw, &exps); err != nil {
		log.Fatalf("fleet operations need a cluster expectations file (JSON array): %v", err)
	}
	sess, err := remote.DialCluster(*instAddr, exps)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	if *scale != 0 {
		resp, err := sess.Scale(*scale)
		if err != nil {
			log.Fatalf("scale: %v", err)
		}
		for _, dna := range resp.Added {
			fmt.Println("added:  ", dna)
		}
		for _, dna := range resp.Removed {
			fmt.Println("removed:", dna)
		}
	}
	if *drain != "" {
		if _, err := sess.DrainDevice(fpga.DNA(*drain), *timeout, *remove); err != nil {
			log.Fatalf("drain: %v", err)
		}
		if *remove {
			fmt.Println("decommissioned:", *drain)
		} else {
			fmt.Println("drained:", *drain)
		}
	}

	stats, err := sess.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet membership (%d boards, %d partitions):\n", boardCount(stats), len(stats))
	for _, ds := range stats {
		state := "healthy"
		switch {
		case ds.Permanent:
			state = "WRITTEN OFF"
		case ds.Quarantined:
			state = "QUARANTINED"
		case ds.Draining:
			state = "draining"
		}
		fmt.Printf("  %-16s %-10s completed=%-4d failed=%-3d retried=%-3d queued=%-3d %s%s\n",
			rpLabel(ds), ds.Kernel, ds.Completed, ds.Failed, ds.Retried, ds.Queued, state, tenantTag(ds))
	}
}

// salusClass maps the -class flag to a scheduling band.
func salusClass(name string) (sched.Class, bool) {
	return sched.ClassByName(name)
}

// runCluster attests a device pool and drives sealed jobs plus live stats
// over one shared connection — concurrently one call per job, or (with
// -batch) as a single batched RPC frame riding the cluster's batched
// secure data path.
func runCluster(raw []byte, addr, kernel string, jobs int, batch bool, qos *remote.QoS) {
	var exps []client.Expectations
	if err := json.Unmarshal(raw, &exps); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expecting a pool of %d devices, CL digest %x...\n", len(exps), exps[0].Digest[:8])

	sess, err := remote.DialCluster(addr, exps)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Attest(); err != nil {
		log.Fatalf("pool NOT trusted: %v", err)
	}
	fmt.Printf("all %d devices attested; shared data key provisioned\n", len(exps))
	if qos != nil {
		sess.SetQoS(*qos)
		fmt.Printf("qos: tenant=%q class=%s deadline=%v\n", qos.Tenant, qos.Class, qos.Deadline)
	}

	if batch {
		runClusterBatch(sess, kernel, jobs)
		return
	}

	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	done := make(chan struct{})
	for i := 0; i < jobs; i++ {
		w, ok := salus.TestWorkload(kernel, int64(i))
		if !ok {
			log.Fatalf("unknown kernel %q", kernel)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := sess.RunJob(kernel, w.Params, w.Input); err != nil {
				errs <- fmt.Errorf("job %d: %w", i, err)
			}
		}(i)
	}
	// While the jobs are in flight, poll stats on the SAME connection —
	// possible only because the RPC client multiplexes concurrent calls.
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			if stats, err := sess.Stats(); err == nil {
				var queued int64
				for _, ds := range stats {
					queued += ds.Queued
				}
				fmt.Printf("  in flight: %d jobs queued across %d devices\n", queued, len(stats))
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()
	wg.Wait()
	close(done)
	close(errs)
	failed := 0
	for err := range errs {
		failed++
		log.Println(err)
	}

	stats, err := sess.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %d sealed %s jobs (%d failed) across the pool:\n", jobs, kernel, failed)
	for _, ds := range stats {
		state := "healthy"
		if ds.Quarantined {
			state = "QUARANTINED"
		}
		fmt.Printf("  %-16s %-10s completed=%-4d failed=%-3d retried=%-3d %s%s\n",
			rpLabel(ds), ds.Kernel, ds.Completed, ds.Failed, ds.Retried, state, tenantTag(ds))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// runClusterBatch submits every job in one RunBatch call: one RPC frame up,
// one down, and on the device one sealed register program per chunk instead
// of one secure round trip per job.
func runClusterBatch(sess *remote.ClusterSession, kernel string, jobs int) {
	inputs := make([]remote.BatchInput, jobs)
	var inBytes int
	for i := range inputs {
		w, ok := salus.TestWorkload(kernel, int64(i))
		if !ok {
			log.Fatalf("unknown kernel %q", kernel)
		}
		inputs[i] = remote.BatchInput{Params: w.Params, Input: w.Input}
		inBytes += len(w.Input)
	}
	start := time.Now()
	results, err := sess.RunBatch(kernel, inputs)
	if err != nil {
		log.Fatalf("batch: %v", err)
	}
	elapsed := time.Since(start)
	failed := 0
	var outBytes int
	for i, r := range results {
		if r.Err != nil {
			failed++
			log.Printf("job %d: %v", i, r.Err)
			continue
		}
		outBytes += len(r.Output)
	}
	mbps := float64(inBytes) / (1 << 20) / elapsed.Seconds()
	fmt.Printf("batched %d sealed %s jobs in one frame: %d bytes in, %d bytes out, %v (%.1f MB/s), %d failed\n",
		jobs, kernel, inBytes, outBytes, elapsed.Round(time.Millisecond), mbps, failed)
	if failed > 0 {
		os.Exit(1)
	}
}
