// Command salus-client is the data owner's side of a networked deployment:
// it loads the expectations published for a cloud instance, attests the
// whole heterogeneous platform with one cascaded-attestation round trip
// over TCP, provisions a data key, and offloads an encrypted job.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"salus"
	"salus/internal/client"
	"salus/internal/remote"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("salus-client: ")
	instAddr := flag.String("inst", "127.0.0.1:7002", "instance gateway address")
	expPath := flag.String("exp", "salus-expectations.json", "expectations file from salus-server")
	kernel := flag.String("kernel", "Conv", "kernel the instance deployed")
	flag.Parse()

	raw, err := os.ReadFile(*expPath)
	if err != nil {
		log.Fatal(err)
	}
	var exp client.Expectations
	if err := json.Unmarshal(raw, &exp); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expecting: user enclave %s, SM enclave %s, CL digest %x..., device %s\n",
		exp.UserEnclave, exp.SMEnclave, exp.Digest[:8], exp.DNA)

	sess, err := remote.DialInstance(*instAddr, exp)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	if err := sess.Attest(); err != nil {
		log.Fatalf("platform NOT trusted: %v", err)
	}
	fmt.Println("platform attested in one round trip; data key provisioned")

	w, ok := salus.TestWorkload(*kernel, 7)
	if !ok {
		log.Fatalf("unknown kernel %q", *kernel)
	}
	out, err := sess.RunJob(*kernel, w.Params, w.Input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offloaded %s: %d input bytes -> %d output bytes (sealed both ways)\n",
		*kernel, len(w.Input), len(out))
}
