package main

import (
	"strings"
	"testing"
	"time"

	"salus/internal/metrics"
	"salus/internal/sched"
)

// TestRenderTop drives the health-board renderer with a canned snapshot and
// asserts the acceptance signals are all visible: live queue depth, cache
// hit rate, quarantine count, and p99 job latency.
func TestRenderTop(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Gauge("salus_sched_queue_depth").Set(6)
	reg.Counter("salus_sched_submitted_total").Add(120)
	reg.Counter("salus_sched_completed_total").Add(117)
	reg.Counter("salus_sched_failed_total").Add(3)
	reg.Counter("salus_sched_quarantine_total").Add(2)
	reg.Counter("salus_smapp_manip_total").Add(1)
	reg.Counter("salus_smapp_manip_hits_total").Add(3)
	h := reg.Histogram("salus_sched_job_seconds")
	for i := 0; i < 99; i++ {
		h.Observe(2 * time.Millisecond)
	}
	h.Observe(300 * time.Millisecond)

	stats := []sched.DeviceStats{
		{DNA: "POOL-00", Kernel: "Conv", Queued: 3, Completed: 60},
		{DNA: "POOL-00", RP: 1, Tenant: "acme", Kernel: "Conv", Queued: 1, Completed: 12},
		{DNA: "POOL-01", Kernel: "Conv", Queued: 2, Completed: 57, Failed: 3, Quarantined: true},
	}
	out := renderTop(stats, reg.Snapshot())

	wants := []string{
		"2 boards / 3 RPs",       // RP-granular capacity, board-granular hardware
		"POOL-00/rp1",            // co-resident partition labelled by RP index
		"tenant=acme",            // dedicated partition shows its tenant
		"6 queued",               // live queue depth (gauge agrees with stats)
		"1 quarantined",          // quarantine count from device stats
		"p99",                    // job latency quantiles
		"manipulation 3/4 (75%)", // prepared-cache hit rate
		"QUARANTINED",
		"POOL-00",
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Errorf("top output missing %q:\n%s", want, out)
		}
	}
	// The single 300ms outlier puts p99 in the 524.288ms (2^19 µs) bucket
	// while p50 stays in the ~2ms bucket.
	if !strings.Contains(out, "p99 524.288ms") {
		t.Errorf("p99 should land in the ~300ms bucket:\n%s", out)
	}
}

// TestRenderTopAggregatesGateways drives the multi-gateway path: two
// gateways' snapshots merge (counters summed, histograms merged bucket-
// for-bucket) and their device rows concatenate into one board.
func TestRenderTopAggregatesGateways(t *testing.T) {
	gw1, gw2 := metrics.NewRegistry(), metrics.NewRegistry()
	gw1.Counter("salus_sched_submitted_total").Add(100)
	gw2.Counter("salus_sched_submitted_total").Add(40)
	gw1.Counter("salus_sched_completed_total").Add(90)
	gw2.Counter("salus_sched_completed_total").Add(40)
	gw1.Gauge("salus_sched_queue_depth").Set(3)
	gw2.Gauge("salus_sched_queue_depth").Set(4)
	for i := 0; i < 99; i++ {
		gw1.Histogram("salus_sched_job_seconds").Observe(2 * time.Millisecond)
	}
	gw2.Histogram("salus_sched_job_seconds").Observe(300 * time.Millisecond)

	stats := []sched.DeviceStats{
		{DNA: "GW0-00", Kernel: "Conv", Queued: 3, Completed: 90},
		{DNA: "GW1-00", Kernel: "Conv", Queued: 4, Completed: 40},
	}
	out := renderTop(stats, metrics.MergeSnapshots(gw1.Snapshot(), gw2.Snapshot()))

	wants := []string{
		"2 boards / 2 RPs",
		"7 queued",         // gauges summed across gateways
		"140 submitted",    // counters summed across gateways
		"p99 524.288ms",    // gw2's outlier visible in the merged quantiles
		"GW0-00", "GW1-00", // both gateways' device rows present
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Errorf("aggregated top output missing %q:\n%s", want, out)
		}
	}
}

func TestHitRateEmpty(t *testing.T) {
	if got := hitRate(0, 0); got != "0/0" {
		t.Fatalf("hitRate(0,0) = %q", got)
	}
	if got := hitRate(1, 3); got != "1/4 (25%)" {
		t.Fatalf("hitRate(1,3) = %q", got)
	}
}
