package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"encoding/json"

	"salus/internal/client"
	"salus/internal/metrics"
	"salus/internal/remote"
	"salus/internal/sched"
)

// runTop is the live fleet-health subcommand: it polls per-device stats
// and aggregate metrics snapshots and renders a compact health board —
// queue depth, boot-cache hit rates, quarantine state, and job-latency
// quantiles. -inst accepts a comma-separated gateway list: counters sum,
// histograms merge bucket-for-bucket (metrics.MergeSnapshots), and device
// rows concatenate, so one board covers a whole fleet of gateways — or a
// federation front tier, which serves the same Stats/Metrics methods.
// -iterations bounds the loop (0 = run until interrupted), which is what
// the e2e test uses.
func runTop(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	instAddr := fs.String("inst", "127.0.0.1:7002", "cluster / fleet / federation gateway address(es), comma-separated")
	expPath := fs.String("exp", "salus-expectations.json", "expectations file from salus-server")
	interval := fs.Duration("interval", time.Second, "refresh interval")
	iterations := fs.Int("iterations", 0, "number of refreshes before exiting (0 = forever)")
	fs.Parse(args)

	raw, err := os.ReadFile(*expPath)
	if err != nil {
		log.Fatal(err)
	}
	var exps []client.Expectations
	if err := json.Unmarshal(raw, &exps); err != nil {
		log.Fatalf("top needs a cluster expectations file (JSON array): %v", err)
	}
	var addrs []string
	for _, a := range strings.Split(*instAddr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		log.Fatal("top: no gateway addresses")
	}
	sessions := make([]*remote.ClusterSession, 0, len(addrs))
	for _, a := range addrs {
		sess, err := remote.DialCluster(a, exps)
		if err != nil {
			log.Fatal(err)
		}
		defer sess.Close()
		sessions = append(sessions, sess)
	}

	for i := 0; *iterations <= 0 || i < *iterations; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		var stats []sched.DeviceStats
		snaps := make([]metrics.Snapshot, 0, len(sessions))
		for j, sess := range sessions {
			s, err := sess.Stats()
			if err != nil {
				log.Fatalf("stats from %s: %v", addrs[j], err)
			}
			stats = append(stats, s...)
			m, err := sess.Metrics()
			if err != nil {
				log.Fatalf("metrics from %s: %v", addrs[j], err)
			}
			snaps = append(snaps, m)
		}
		if len(addrs) > 1 {
			fmt.Printf("salus top — aggregating %d gateways (%s)\n", len(addrs), strings.Join(addrs, ", "))
		}
		fmt.Print(renderTop(stats, metrics.MergeSnapshots(snaps...)))
	}
}

// renderTop formats one refresh of the health board.
func renderTop(stats []sched.DeviceStats, snap metrics.Snapshot) string {
	var b strings.Builder
	now := time.Now().Format(time.TimeOnly)

	var queued int64
	quarantined, permanent, draining := 0, 0, 0
	for _, ds := range stats {
		queued += ds.Queued
		if ds.Permanent {
			permanent++
		} else if ds.Quarantined {
			quarantined++
		}
		if ds.Draining {
			draining++
		}
	}

	fmt.Fprintf(&b, "salus top — %s — %d boards / %d RPs\n", now, boardCount(stats), len(stats))
	fmt.Fprintf(&b, "  queue depth   %d queued (gauge %d)\n",
		queued, snap.Gauges["salus_sched_queue_depth"])
	fmt.Fprintf(&b, "  health        %d quarantined, %d written off, %d draining (%d quarantine events, %d readmissions)\n",
		quarantined, permanent, draining,
		snap.Counters["salus_sched_quarantine_total"], snap.Counters["salus_sched_readmit_total"])
	fmt.Fprintf(&b, "  jobs          %d submitted, %d completed, %d failed, %d re-dispatched\n",
		snap.Counters["salus_sched_submitted_total"], snap.Counters["salus_sched_completed_total"],
		snap.Counters["salus_sched_failed_total"], snap.Counters["salus_sched_redispatched_total"])

	if h, ok := snap.Histograms["salus_sched_job_seconds"]; ok && h.Count > 0 {
		fmt.Fprintf(&b, "  job latency   p50 %v  p95 %v  p99 %v  (n=%d, mean %v)\n",
			h.P50, h.P95, h.P99, h.Count, h.Mean())
	} else {
		fmt.Fprintf(&b, "  job latency   no jobs recorded yet\n")
	}

	fmt.Fprintf(&b, "  boot caches   manipulation %s, encryption %s, quote reuse %s\n",
		hitRate(snap.Counters["salus_smapp_manip_hits_total"], snap.Counters["salus_smapp_manip_total"]),
		hitRate(snap.Counters["salus_smapp_enc_hits_total"], snap.Counters["salus_smapp_enc_total"]),
		hitRate(snap.Counters["salus_smapp_quote_reused_total"], snap.Counters["salus_smapp_quote_generated_total"]))
	fmt.Fprintf(&b, "  sessions      %d key exchanges, %d rekeys, %d gateway redials\n",
		snap.Counters["salus_session_exchanges_total"], snap.Counters["salus_session_rekeys_total"],
		snap.Counters["salus_remote_redials_total"])

	for _, ds := range stats {
		state := "healthy"
		switch {
		case ds.Permanent:
			state = "WRITTEN OFF"
		case ds.Quarantined:
			state = "QUARANTINED"
		case ds.Draining:
			state = "draining"
		}
		fmt.Fprintf(&b, "  %-16s %-10s queued=%-3d completed=%-4d failed=%-3d %s%s\n",
			rpLabel(ds), ds.Kernel, ds.Queued, ds.Completed, ds.Failed, state, tenantTag(ds))
	}
	return b.String()
}

// rpLabel names one scheduler row: the board DNA alone for a classic
// single-partition device, "DNA/rpN" under spatial sharing.
func rpLabel(ds sched.DeviceStats) string {
	if ds.RP == 0 && ds.Tenant == "" {
		return string(ds.DNA)
	}
	return fmt.Sprintf("%s/rp%d", ds.DNA, ds.RP)
}

// tenantTag renders a dedicated partition's tenant, or nothing.
func tenantTag(ds sched.DeviceStats) string {
	if ds.Tenant == "" {
		return ""
	}
	return fmt.Sprintf(" tenant=%s", ds.Tenant)
}

// boardCount counts distinct DNAs across the per-RP stat rows.
func boardCount(stats []sched.DeviceStats) int {
	seen := make(map[string]bool, len(stats))
	for _, ds := range stats {
		seen[string(ds.DNA)] = true
	}
	return len(seen)
}

// hitRate renders "hits/total (pct)" for a cache's hit and cold counters.
func hitRate(hits, cold uint64) string {
	total := hits + cold
	if total == 0 {
		return "0/0"
	}
	return fmt.Sprintf("%d/%d (%.0f%%)", hits, total, 100*float64(hits)/float64(total))
}
