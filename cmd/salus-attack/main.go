// Command salus-attack launches every adversarial capability of the threat
// model (§3.1) against live deployments and prints the protection matrix of
// Table 3 / §4.6: CL substitution, bitstream tampering, PCIe bus attacks,
// forged attestations, device spoofing, replay, snooping, readback scans,
// and hostile bitstream storage.
package main

import (
	"fmt"
	"log"
	"os"

	"salus"
)

func main() {
	log.SetFlags(0)
	fmt.Println("Table 3 — protection of secrets in the secure CL booting flow")
	fmt.Println()
	rows := salus.RunTable3()
	fmt.Println(salus.FormatTable3(rows))
	for _, r := range rows {
		if !r.Protected {
			fmt.Fprintln(os.Stderr, "salus-attack: at least one attack was NOT blocked")
			os.Exit(1)
		}
	}
	fmt.Println("All attacks blocked; the honest baseline boots.")
}
