// Command salus-server hosts a complete networked Salus deployment: the
// manufacturer's key-distribution RPC service and a cloud instance gateway
// (boot / provision / jobs), with the instance's SM enclave fetching the
// device key over TCP — the deployment topology of §6.1, on localhost.
//
// With -devices N (N > 1) it hosts an elastic device pool instead: N
// independently manufactured FPGAs behind one fleet gateway and a job
// scheduler. The data owner attests every device, provisions one shared
// data key, and sealed jobs fan out to the least-loaded board. The pool is
// elastic at runtime: Cluster.Scale / Cluster.Drain RPCs grow and shrink
// it between -min-devices and -max-devices, and with -auto-replace the
// fleet manager swaps out permanently quarantined boards on its own.
//
// It writes the data owner's expectations (measurements, digest H, DNA,
// root) to -exp so cmd/salus-client can verify the platform from "outside".
// In cluster mode the file holds a JSON array, one entry per device.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"salus"
	"salus/internal/client"
	"salus/internal/core"
	"salus/internal/fleet"
	"salus/internal/fpga"
	"salus/internal/manufacturer"
	"salus/internal/metrics"
	"salus/internal/remote"
	"salus/internal/sched"
)

// ceiling renders the -max-devices bound for the banner.
func ceiling(max int) string {
	if max <= 0 {
		return "∞"
	}
	return fmt.Sprintf("%d", max)
}

// parseTenantWeights parses "-tenant-weights" ('name=weight' pairs,
// comma-separated) into a sched fair-share map; empty input means nil.
func parseTenantWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	weights := make(map[string]int)
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("-tenant-weights: %q is not name=weight", pair)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("-tenant-weights: %q needs a positive integer weight", pair)
		}
		weights[name] = w
	}
	return weights, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("salus-server: ")
	kernel := flag.String("kernel", "Conv", "benchmark kernel to deploy")
	mfrAddr := flag.String("mfr", "127.0.0.1:7001", "manufacturer service address")
	instAddr := flag.String("inst", "127.0.0.1:7002", "instance / cluster gateway address")
	expPath := flag.String("exp", "salus-expectations.json", "where to write the data owner's expectations")
	devices := flag.Int("devices", 1, "number of FPGA devices; >1 serves a cluster gateway with a job scheduler")
	rpsPerDevice := flag.Int("rps-per-device", 1, "cluster mode: reconfigurable partitions carved per board, each an independent serving unit")
	tenantWeights := flag.String("tenant-weights", "", "cluster mode: per-tenant fair-share weights, e.g. 'gold=3,bronze=1' (unlisted tenants weigh 1)")
	queue := flag.Int("queue", sched.DefaultQueueDepth, "cluster mode: per-device job queue depth")
	retries := flag.Int("retries", sched.DefaultMaxRetries, "cluster mode: re-dispatch attempts for device faults (negative disables)")
	quarAfter := flag.Int("quarantine-after", sched.DefaultQuarantineAfter, "cluster mode: consecutive faults before a device is quarantined")
	quarBase := flag.Duration("quarantine", sched.DefaultQuarantineBase, "cluster mode: initial quarantine window (doubles per relapse)")
	permAfter := flag.Int("permanent-after", 3, "cluster mode: failed probes at max backoff before a board is written off (0 disables)")
	minDevices := flag.Int("min-devices", 1, "cluster mode: floor the fleet may never shrink below")
	maxDevices := flag.Int("max-devices", 0, "cluster mode: ceiling the fleet may never grow beyond (0 = unbounded)")
	autoReplace := flag.Duration("auto-replace", 0, "cluster mode: scan interval for replacing written-off boards (0 disables)")
	autoscale := flag.Duration("autoscale", 0, "cluster mode: queue-pressure sampling interval for autoscaling (0 disables)")
	autoscaleHigh := flag.Float64("autoscale-high", 4, "cluster mode: mean queued jobs per device that triggers scale-up")
	autoscaleLow := flag.Float64("autoscale-low", 0.5, "cluster mode: mean queued jobs per device that triggers scale-down")
	tenantRate := flag.Float64("tenant-rate", 0, "cluster mode: sustained jobs/sec each tenant may submit (0 disables)")
	tenantBurst := flag.Float64("tenant-burst", 0, "cluster mode: per-tenant burst depth (0 defaults to -tenant-rate)")
	maxP99 := flag.Duration("max-p99", 0, "cluster mode: shed non-critical work when live p99 job latency exceeds this (0 disables)")
	metricsEvery := flag.Duration("metrics-interval", 0, "dump the process metrics registry every interval (0 disables)")
	flag.Parse()

	k, ok := salus.KernelByName(*kernel)
	if !ok {
		log.Fatalf("unknown kernel %q", *kernel)
	}
	if *devices < 1 {
		log.Fatalf("-devices must be >= 1, got %d", *devices)
	}
	if *rpsPerDevice < 1 {
		log.Fatalf("-rps-per-device must be >= 1, got %d", *rpsPerDevice)
	}
	weights, err := parseTenantWeights(*tenantWeights)
	if err != nil {
		log.Fatal(err)
	}

	mfr, err := manufacturer.New()
	if err != nil {
		log.Fatal(err)
	}
	mfrSrv, mfrBound, err := remote.ServeManufacturer(mfr, *mfrAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer mfrSrv.Close()
	fmt.Println("manufacturer service:", mfrBound)

	kc, err := remote.DialManufacturer(mfrBound)
	if err != nil {
		log.Fatal(err)
	}
	defer kc.Close()

	newSystem := func(dna fpga.DNA) *core.System {
		sys, err := core.NewSystem(core.SystemConfig{
			Kernel:       k,
			DNA:          dna,
			Manufacturer: mfr,
			KeyService:   kc,
			Timing:       salus.FastTiming(),
		})
		if err != nil {
			log.Fatal(err)
		}
		return sys
	}

	var expJSON []byte
	if *devices == 1 {
		sys := newSystem("")
		instSrv, instBound, err := remote.ServeInstance(sys, *instAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer instSrv.Close()
		fmt.Println("instance gateway:   ", instBound)
		expJSON, err = json.MarshalIndent(sys.Expectations(), "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("deployed %s CL (digest %x...)\n", *kernel, sys.Package.Digest[:8])
	} else {
		mgr, err := fleet.New(fleet.Config{
			Kernel:       k,
			DNAPrefix:    "POOL",
			Manufacturer: mfr,
			KeyService:   kc,
			Timing:       salus.FastTiming(),
			RPsPerDevice: *rpsPerDevice,
			Scheduler: sched.Config{
				QueueDepth:      *queue,
				MaxRetries:      *retries,
				QuarantineAfter: *quarAfter,
				QuarantineBase:  *quarBase,
				PermanentAfter:  *permAfter,
				TenantWeights:   weights,
			},
			MinDevices: *minDevices,
			MaxDevices: *maxDevices,
			OnReplace: func(old, new fpga.DNA) {
				log.Printf("auto-replaced written-off board %s with %s", old, new)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		defer mgr.Close()
		var gwOpts []remote.GatewayOption
		if *tenantRate > 0 || *maxP99 > 0 {
			adm := remote.NewAdmission(remote.AdmissionConfig{
				TenantRate:  *tenantRate,
				TenantBurst: *tenantBurst,
				MaxP99:      *maxP99,
			})
			gwOpts = append(gwOpts, remote.WithAdmission(adm))
			fmt.Printf("admission control:   tenant-rate=%g/s burst=%g max-p99=%v\n", *tenantRate, *tenantBurst, *maxP99)
		}
		clSrv, systems, clBound, err := remote.ServeFleet(mgr, *devices, *instAddr, gwOpts...)
		if err != nil {
			log.Fatal(err)
		}
		defer clSrv.Close()
		if *autoReplace > 0 {
			mgr.StartAutoReplace(*autoReplace)
			fmt.Println("auto-replace every: ", *autoReplace)
		}
		if *autoscale > 0 {
			mgr.StartAutoscale(fleet.AutoscaleConfig{
				Interval:  *autoscale,
				HighWater: *autoscaleHigh,
				LowWater:  *autoscaleLow,
			})
			fmt.Printf("autoscale every:     %v (high=%g low=%g per device)\n", *autoscale, *autoscaleHigh, *autoscaleLow)
		}
		fmt.Println("fleet gateway:      ", clBound)
		exps := make([]client.Expectations, len(systems))
		for i, sys := range systems {
			exps[i] = sys.Expectations()
		}
		expJSON, err = json.MarshalIndent(exps, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("deployed %s CL on %d boards x %d RPs = %d partitions (digest %x...), elastic %d..%s boards\n",
			*kernel, *devices, *rpsPerDevice, len(systems), systems[0].Package.Digest[:8], *minDevices, ceiling(*maxDevices))
		if len(weights) > 0 {
			fmt.Printf("tenant fair share:   %s\n", *tenantWeights)
		}
	}

	if err := os.WriteFile(*expPath, expJSON, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("expectations written:", *expPath)

	stopMetrics := make(chan struct{})
	if *metricsEvery > 0 {
		fmt.Println("metrics dump every:  ", *metricsEvery)
		go func() {
			t := time.NewTicker(*metricsEvery)
			defer t.Stop()
			for {
				select {
				case <-stopMetrics:
					return
				case <-t.C:
					fmt.Printf("--- metrics %s ---\n%s", time.Now().Format(time.TimeOnly), metrics.Default().Snapshot())
				}
			}
		}()
	}

	fmt.Println("waiting for a data owner — Ctrl-C to stop")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	close(stopMetrics)
	fmt.Println("\nshutting down")
}
