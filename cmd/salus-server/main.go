// Command salus-server hosts a complete networked Salus deployment: the
// manufacturer's key-distribution RPC service and a cloud instance gateway
// (boot / provision / jobs), with the instance's SM enclave fetching the
// device key over TCP — the deployment topology of §6.1, on localhost.
//
// It writes the data owner's expectations (measurements, digest H, DNA,
// root) to -exp so cmd/salus-client can verify the platform from "outside".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"salus"
	"salus/internal/core"
	"salus/internal/manufacturer"
	"salus/internal/remote"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("salus-server: ")
	kernel := flag.String("kernel", "Conv", "benchmark kernel to deploy")
	mfrAddr := flag.String("mfr", "127.0.0.1:7001", "manufacturer service address")
	instAddr := flag.String("inst", "127.0.0.1:7002", "instance gateway address")
	expPath := flag.String("exp", "salus-expectations.json", "where to write the data owner's expectations")
	flag.Parse()

	k, ok := salus.KernelByName(*kernel)
	if !ok {
		log.Fatalf("unknown kernel %q", *kernel)
	}

	mfr, err := manufacturer.New()
	if err != nil {
		log.Fatal(err)
	}
	mfrSrv, mfrBound, err := remote.ServeManufacturer(mfr, *mfrAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer mfrSrv.Close()
	fmt.Println("manufacturer service:", mfrBound)

	kc, err := remote.DialManufacturer(mfrBound)
	if err != nil {
		log.Fatal(err)
	}
	defer kc.Close()

	sys, err := core.NewSystem(core.SystemConfig{
		Kernel:       k,
		Manufacturer: mfr,
		KeyService:   kc,
		Timing:       salus.FastTiming(),
	})
	if err != nil {
		log.Fatal(err)
	}
	instSrv, instBound, err := remote.ServeInstance(sys, *instAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer instSrv.Close()
	fmt.Println("instance gateway:   ", instBound)

	expJSON, err := json.MarshalIndent(sys.Expectations(), "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*expPath, expJSON, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("expectations written:", *expPath)
	fmt.Printf("deployed %s CL (digest %x...); waiting for a data owner — Ctrl-C to stop\n",
		*kernel, sys.Package.Digest[:8])

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nshutting down")
}
