// Command salus-dev is the developer-side toolchain CLI (§4.2's
// development flow, plus byteman-style bitstream forensics):
//
//	salus-dev compile  -kernel Conv -o conv_cl        # CL package → files
//	salus-dev inspect  conv_cl.bit                    # header, cells, digest H
//	salus-dev verify   -meta conv_cl.json conv_cl.bit # digest check (⑤a)
//	salus-dev diff     a.bit b.bit                    # frame-level diff
//	salus-dev inject   -meta conv_cl.json -o out.bit conv_cl.bit
//	                                                  # demo injection (plaintext!)
package main

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"salus"
	"salus/internal/bitman"
	"salus/internal/cryptoutil"
	"salus/internal/netlist"
	"salus/internal/smlogic"
)

// metaFile is the developer-recorded metadata stored alongside the
// bitstream: digest H and Loc_Keyattest.
type metaFile struct {
	KernelName string           `json:"kernel"`
	LogicID    string           `json:"logic_id"`
	DigestHex  string           `json:"digest"`
	Loc        netlist.Location `json:"loc"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("salus-dev: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "compile":
		compile(os.Args[2:])
	case "inspect":
		inspect(os.Args[2:])
	case "verify":
		verify(os.Args[2:])
	case "diff":
		diff(os.Args[2:])
	case "inject":
		inject(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: salus-dev {compile|inspect|verify|diff|inject} [flags]")
	os.Exit(2)
}

func compile(args []string) {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	kernel := fs.String("kernel", "Conv", "benchmark kernel")
	device := fs.String("device", "test", "device profile: test or u200")
	seed := fs.Int64("seed", 1, "place-and-route seed")
	out := fs.String("o", "", "output basename (default: <kernel>_cl)")
	fs.Parse(args)

	k, ok := salus.KernelByName(*kernel)
	if !ok {
		log.Fatalf("unknown kernel %q", *kernel)
	}
	profile := salus.TestDevice
	if *device == "u200" {
		profile = salus.U200
	}
	pkg, err := salus.DevelopCL(k, profile, *seed)
	if err != nil {
		log.Fatal(err)
	}
	base := *out
	if base == "" {
		base = pkg.DesignName
	}
	if err := os.WriteFile(base+".bit", pkg.Encoded, 0o644); err != nil {
		log.Fatal(err)
	}
	meta := metaFile{
		KernelName: pkg.KernelName,
		LogicID:    pkg.LogicID,
		DigestHex:  hex.EncodeToString(pkg.Digest[:]),
		Loc:        pkg.Loc,
	}
	mj, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(base+".json", mj, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %s on %s: %s.bit (%d bytes), %s.json (H=%x...)\n",
		pkg.DesignName, profile.Name, base, len(pkg.Encoded), base, pkg.Digest[:8])
}

func inspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("inspect needs one .bit file")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	info, err := bitman.Inspect(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(info)
}

func loadMeta(path string) metaFile {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var m metaFile
	if err := json.Unmarshal(raw, &m); err != nil {
		log.Fatal(err)
	}
	return m
}

func verify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	metaPath := fs.String("meta", "", "metadata .json file")
	fs.Parse(args)
	if fs.NArg() != 1 || *metaPath == "" {
		log.Fatal("verify needs -meta meta.json and one .bit file")
	}
	m := loadMeta(*metaPath)
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	got := cryptoutil.Digest(data)
	//lint:allow ct-compare offline dev tool comparing public measurements of a local file; no attacker-observable timing surface
	if hex.EncodeToString(got[:]) != m.DigestHex {
		log.Fatalf("DIGEST MISMATCH: bitstream %x..., metadata %s...", got[:8], m.DigestHex[:16])
	}
	fmt.Printf("digest OK: %x\n", got)
}

func diff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		log.Fatal("diff needs two .bit files")
	}
	a, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	b, err := os.ReadFile(fs.Arg(1))
	if err != nil {
		log.Fatal(err)
	}
	diffs, err := bitman.Diff(a, b)
	if err != nil {
		log.Fatal(err)
	}
	if len(diffs) == 0 {
		fmt.Println("bitstreams identical")
		return
	}
	fmt.Printf("%d differing frames:\n", len(diffs))
	for i, d := range diffs {
		if i >= 20 {
			fmt.Printf("  ... and %d more\n", len(diffs)-20)
			break
		}
		fmt.Printf("  frame %6d: %d bytes from offset %d\n", d.Frame, d.Bytes, d.FirstByte)
	}
}

func inject(args []string) {
	fs := flag.NewFlagSet("inject", flag.ExitOnError)
	metaPath := fs.String("meta", "", "metadata .json file")
	out := fs.String("o", "injected.bit", "output file")
	fs.Parse(args)
	if fs.NArg() != 1 || *metaPath == "" {
		log.Fatal("inject needs -meta meta.json and one .bit file")
	}
	m := loadMeta(*metaPath)
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	tool, err := bitman.Open(data)
	if err != nil {
		log.Fatal(err)
	}
	secret := cryptoutil.RandomKey(smlogic.SecretsSize)
	if err := tool.Inject(m.Loc, 0, secret); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, tool.Serialize(), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected %d random bytes at %s into %s\n", len(secret), m.Loc.Path, *out)
	fmt.Println("WARNING: demo only — in the real flow injection happens inside the SM enclave")
	fmt.Println("         and the result leaves it encrypted under Key_device, never as plaintext.")
}
