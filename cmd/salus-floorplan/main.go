// Command salus-floorplan prints the device floor planning of Figure 8 and
// the resource utilisation breakdown of Table 5: each benchmark accelerator
// plus the SM logic against the one-SLR reconfigurable partition of the
// Alveo U200.
package main

import (
	"fmt"

	"salus"
	"salus/internal/accel"
	"salus/internal/netlist"
	"salus/internal/smlogic"
)

func main() {
	fmt.Println("Figure 8 — floor planning of shell and CL on the FPGA")
	fmt.Println()
	fmt.Println(salus.U200Floorplan())

	fmt.Println("Table 5 — resource utilisation breakdown of CL")
	fmt.Println()
	mods := make([]netlist.ModuleSpec, 0, 6)
	for _, k := range accel.Kernels() {
		mods = append(mods, k.Module())
	}
	mods = append(mods, smlogic.Module())
	fmt.Println(netlist.UtilizationReport(salus.U200, mods))

	fmt.Println("Partial bitstream volume (fixed by the reserved partition, §6.3):",
		salus.U200.RPBytes()>>20, "MiB")
}
