// Command salus-bench regenerates the paper's runtime evaluation (§6.4):
// Figure 10 (speedup of the five workloads on the Salus FPGA TEE over an
// SGX CPU TEE) and Table 6 (the slowdown each TEE adds over its own plain
// baseline), from the calibrated architectural model. With -measure it also
// runs the real Go kernels with real AES-CTR traffic encryption on this
// machine for functional ground truth.
package main

import (
	"flag"
	"fmt"
	"log"

	"salus"
	"salus/internal/accel"
	"salus/internal/perfmodel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("salus-bench: ")
	measure := flag.Bool("measure", false, "also run the real kernels with real traffic encryption")
	flag.Parse()

	c := salus.DefaultPerfConstants()

	fmt.Println("Table 6 — slowdown of CPU TEE and FPGA TEE (paper rows: Conv, Rendering, FaceDetect)")
	fmt.Println()
	fmt.Println(salus.FormatTable6(salus.Table6(c)))

	fmt.Println("Figure 10 — performance of realistic workloads on a securely booted FPGA TEE")
	fmt.Println()
	fmt.Println(salus.FormatFigure10(salus.Figure10(c)))
	fmt.Println("(paper envelope: 1.17x – 15.64x)")

	if !*measure {
		return
	}
	fmt.Println()
	fmt.Println("Measured on this machine (real Go kernels, paper-scale workloads, real AES-CTR):")
	fmt.Printf("%-14s %14s %14s %9s\n", "Application", "plain", "with crypto", "overhead")
	for _, k := range accel.Kernels() {
		w, ok := accel.PaperWorkload(k.Name(), 1)
		if !ok {
			continue
		}
		plain, err := perfmodel.MeasureCPU(k, w, false)
		if err != nil {
			log.Fatal(err)
		}
		tee, err := perfmodel.MeasureCPU(k, w, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %14v %14v %8.2fx\n", k.Name(), plain.Round(10e3), tee.Round(10e3),
			float64(tee)/float64(plain))
	}
}
