// Command salus-bench regenerates the paper's runtime evaluation (§6.4):
// Figure 10 (speedup of the five workloads on the Salus FPGA TEE over an
// SGX CPU TEE) and Table 6 (the slowdown each TEE adds over its own plain
// baseline), from the calibrated architectural model. With -measure it also
// runs the real Go kernels with real AES-CTR traffic encryption on this
// machine for functional ground truth.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"salus"
	"salus/internal/accel"
	"salus/internal/core"
	"salus/internal/fpga"
	"salus/internal/perfmodel"
	"salus/internal/sched"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("salus-bench: ")
	if len(os.Args) > 1 && os.Args[1] == "federation" {
		benchFederation(os.Args[2:])
		return
	}
	measure := flag.Bool("measure", false, "also run the real kernels with real traffic encryption")
	schedDevs := flag.Int("sched", 0, "also benchmark the job scheduler over N simulated devices (0 = skip)")
	schedJobs := flag.Int("jobs", 64, "jobs per scheduler benchmark run")
	flag.Parse()

	if *schedDevs > 0 {
		benchScheduler(*schedDevs, *schedJobs)
		return
	}

	c := salus.DefaultPerfConstants()

	fmt.Println("Table 6 — slowdown of CPU TEE and FPGA TEE (paper rows: Conv, Rendering, FaceDetect)")
	fmt.Println()
	fmt.Println(salus.FormatTable6(salus.Table6(c)))

	fmt.Println("Figure 10 — performance of realistic workloads on a securely booted FPGA TEE")
	fmt.Println()
	fmt.Println(salus.FormatFigure10(salus.Figure10(c)))
	fmt.Println("(paper envelope: 1.17x – 15.64x)")

	if !*measure {
		return
	}
	fmt.Println()
	fmt.Println("Measured on this machine (real Go kernels, paper-scale workloads, real AES-CTR):")
	fmt.Printf("%-14s %14s %14s %9s\n", "Application", "plain", "with crypto", "overhead")
	for _, k := range accel.Kernels() {
		w, ok := accel.PaperWorkload(k.Name(), 1)
		if !ok {
			continue
		}
		plain, err := perfmodel.MeasureCPU(k, w, false)
		if err != nil {
			log.Fatal(err)
		}
		tee, err := perfmodel.MeasureCPU(k, w, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %14v %14v %8.2fx\n", k.Name(), plain.Round(10e3), tee.Round(10e3),
			float64(tee)/float64(plain))
	}
}

// benchScheduler compares a serial RunJob loop on one device against the
// scheduler fanning the same jobs across n devices, all with session reuse.
func benchScheduler(n, jobs int) {
	// Model the ~2 ms the host spends idle-blocked on a physical board per
	// job; overlapping that wait across boards is the scheduler's win.
	timing := salus.FastTiming()
	timing.RealJobLatency = 2 * time.Millisecond
	newPool := func(size int) []*core.System {
		systems := make([]*core.System, size)
		for i := range systems {
			sys, err := core.NewSystem(core.SystemConfig{
				Kernel: accel.Conv{},
				Seed:   int64(700 + i),
				DNA:    fpga.DNA(fmt.Sprintf("BENCH-%02d", i)),
				Timing: timing,
			})
			if err != nil {
				log.Fatal(err)
			}
			systems[i] = sys
		}
		if _, err := sched.BootShared(systems); err != nil {
			log.Fatal(err)
		}
		return systems
	}
	workload := func(i int) accel.Workload { return accel.GenConv(16, 16, 4, int64(i)) }

	// Serial baseline: one device, one job at a time.
	serial := newPool(1)[0]
	start := time.Now()
	for i := 0; i < jobs; i++ {
		if _, err := serial.RunJob(workload(i)); err != nil {
			log.Fatal(err)
		}
	}
	serialRate := float64(jobs) / time.Since(start).Seconds()

	// Scheduler: the same jobs over n devices.
	s := sched.New(sched.Config{})
	for _, sys := range newPool(n) {
		if err := s.Register(sys); err != nil {
			log.Fatal(err)
		}
	}
	start = time.Now()
	futs := make([]*sched.Future, jobs)
	for i := range futs {
		futs[i] = s.Submit(workload(i))
	}
	for i, f := range futs {
		if _, err := f.Wait(); err != nil {
			log.Fatalf("job %d: %v", i, err)
		}
	}
	schedRate := float64(jobs) / time.Since(start).Seconds()
	s.Close()

	// Batched path: the same jobs submitted as one batch, so each device
	// seals one register program per chunk and pays the fabric wait once
	// per chunk instead of once per job.
	sb := sched.New(sched.Config{})
	for _, sys := range newPool(n) {
		if err := sb.Register(sys); err != nil {
			log.Fatal(err)
		}
	}
	ws := make([]accel.Workload, jobs)
	for i := range ws {
		ws[i] = workload(i)
	}
	start = time.Now()
	for i, f := range sb.SubmitBatch(ws) {
		if _, err := f.Wait(); err != nil {
			log.Fatalf("batched job %d: %v", i, err)
		}
	}
	batchRate := float64(jobs) / time.Since(start).Seconds()
	sb.Close()

	fmt.Printf("Scheduler throughput — %d jobs, Conv 16x16x4, session reuse enabled\n\n", jobs)
	fmt.Printf("%-24s %12s\n", "configuration", "jobs/sec")
	fmt.Printf("%-24s %12.1f\n", "serial, 1 device", serialRate)
	noun := "devices"
	if n == 1 {
		noun = "device"
	}
	fmt.Printf("%-24s %12.1f   (%.2fx)\n", fmt.Sprintf("scheduler, %d %s", n, noun), schedRate, schedRate/serialRate)
	fmt.Printf("%-24s %12.1f   (%.2fx)\n", fmt.Sprintf("batched, %d %s", n, noun), batchRate, batchRate/serialRate)
}
