package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"salus"
	"salus/internal/accel"
	"salus/internal/cryptoutil"
	"salus/internal/federation"
	"salus/internal/sched"
)

// fedLoadResult is one deployment's measured serving window.
type fedLoadResult struct {
	clients int
	elapsed time.Duration
	rate    float64 // completed jobs/sec
	stats   federation.Stats
	net     time.Duration // modelled WAN + intra-region time
}

// runFederationLoad builds a federation of the given shape and drives one
// job from each of `clients` concurrent client sessions through it. Every
// client is its own goroutine with its own session identity (tenant +
// data-key name) — the concurrency the front tier must place — while
// `inflight` bounds how many jobs are inside the region at once (the rest
// of the clients are connected and waiting, exactly like an open system
// under admission). Returns the achieved goodput.
func runFederationLoad(shards, devices, clients, inflight int, latency time.Duration, spillHigh float64) fedLoadResult {
	timing := salus.FastTiming()
	timing.RealJobLatency = latency
	d, err := federation.BuildLocal(federation.LocalSpec{
		Shards:          shards,
		DevicesPerShard: devices,
		Kernel:          accel.Conv{},
		Timing:          timing,
		Scheduler:       sched.Config{QueueDepth: 256},
		Federation:      federation.Config{SpillHighWater: spillHigh},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	// One region data key, many client sessions: pre-seal the shared
	// workload once so the measurement is the serving tier, not 100k AES
	// setups in the driver.
	w := accel.GenConv(4, 4, 1, 42)
	sealed, err := cryptoutil.Seal(d.Key, w.Input, []byte("job-input"))
	if err != nil {
		log.Fatal(err)
	}

	sem := make(chan struct{}, inflight)
	var wg sync.WaitGroup
	var failed atomic.Uint64
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			tenant := fmt.Sprintf("tenant-%d", i%997)
			key := fmt.Sprintf("dataset-%d", i)
			res, err := d.Fed.Submit(tenant, key, "Conv", w.Params, sealed, sched.SubmitOptions{Class: sched.ClassStandard})
			if err != nil {
				failed.Add(1)
				return
			}
			if _, err := res.Future.Wait(); err != nil {
				failed.Add(1)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if n := failed.Load(); n > 0 {
		log.Fatalf("%d of %d client jobs failed", n, clients)
	}
	return fedLoadResult{
		clients: clients,
		elapsed: elapsed,
		rate:    float64(clients) / elapsed.Seconds(),
		stats:   d.Fed.Stats(),
		net:     d.Fed.NetClock().Elapsed(),
	}
}

// benchFederation is the `salus-bench federation` subcommand: aggregate
// goodput of a federated region versus a single gateway over the same
// per-shard hardware, plus a hot-spot phase that exercises spill-over.
func benchFederation(args []string) {
	fs := flag.NewFlagSet("federation", flag.ExitOnError)
	shards := fs.Int("shards", 3, "shard gateways in the federated run")
	devices := fs.Int("devices", 2, "FPGA devices per shard")
	clients := fs.Int("clients", 100000, "concurrent simulated client sessions in the federated run")
	inflight := fs.Int("inflight", 1024, "jobs inside the region at once")
	latency := fs.Duration("latency", 100*time.Microsecond, "modelled per-job device latency")
	spillHigh := fs.Float64("spill-high", federation.DefaultSpillHighWater, "queued jobs per device at which a shard spills")
	hotJobs := fs.Int("hot-jobs", 5000, "jobs from one hot session in the spill-over phase (0 = skip)")
	fs.Parse(args)

	fmt.Printf("Federation throughput — Conv 4x4x1, %v device latency, %d in flight\n\n", *latency, *inflight)
	fmt.Printf("%-28s %10s %12s\n", "configuration", "sessions", "jobs/sec")

	// Baseline: one gateway with one shard's hardware serving its fair
	// share of the clients. Aggregate goodput of the federation must beat
	// this by ~the shard count — the tier's scale-out claim.
	baseClients := *clients / *shards
	base := runFederationLoad(1, *devices, baseClients, *inflight, *latency, *spillHigh)
	fmt.Printf("%-28s %10d %12.1f\n", fmt.Sprintf("single gateway, %d devices", *devices), base.clients, base.rate)

	multi := runFederationLoad(*shards, *devices, *clients, *inflight, *latency, *spillHigh)
	fmt.Printf("%-28s %10d %12.1f   (%.2fx aggregate)\n",
		fmt.Sprintf("federated, %d gw x %d dev", *shards, *devices), multi.clients, multi.rate, multi.rate/base.rate)

	st := multi.stats
	total := st.Routed + st.Spilled
	fmt.Printf("\nrouting: %d home (%.1f%% hit rate), %d spilled, %d hand-offs, ring epoch %d\n",
		st.Routed, 100*float64(st.Routed)/float64(total), st.Spilled, st.Handoffs, st.Epoch)
	fmt.Printf("modelled network: %v WAN+region across %d jobs\n", multi.net.Round(time.Millisecond), total)

	if *hotJobs <= 0 {
		return
	}
	// Hot-spot phase: every job carries ONE session identity, so the ring
	// pins the load to one home shard; once its backlog passes the spill
	// threshold the router migrates the overflow to idle siblings — keyed
	// by enclave hand-off, no owner round trip.
	hot := runHotSpot(*shards, *devices, *hotJobs, *inflight, *latency, *spillHigh)
	fmt.Printf("\nhot-spot spill-over — one session, %d jobs over %d x %d-device shards\n", *hotJobs, *shards, *devices)
	fmt.Printf("  %d served at home, %d spilled (%.1f%%), %d hand-offs\n",
		hot.Routed, hot.Spilled, 100*float64(hot.Spilled)/float64(hot.Routed+hot.Spilled), hot.Handoffs)
}

// runHotSpot drives one session's jobs through a fresh federation and
// returns its routing stats.
func runHotSpot(shards, devices, jobs, inflight int, latency time.Duration, spillHigh float64) federation.Stats {
	timing := salus.FastTiming()
	timing.RealJobLatency = latency
	d, err := federation.BuildLocal(federation.LocalSpec{
		Shards:          shards,
		DevicesPerShard: devices,
		Kernel:          accel.Conv{},
		Timing:          timing,
		Scheduler:       sched.Config{QueueDepth: 256},
		Federation:      federation.Config{SpillHighWater: spillHigh},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	w := accel.GenConv(4, 4, 1, 7)
	sealed, err := cryptoutil.Seal(d.Key, w.Input, []byte("job-input"))
	if err != nil {
		log.Fatal(err)
	}
	sem := make(chan struct{}, inflight)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := d.Fed.Submit("tenant-hot", "hot-dataset", "Conv", w.Params, sealed, sched.SubmitOptions{Class: sched.ClassStandard})
			if err != nil {
				log.Fatal(err)
			}
			if _, err := res.Future.Wait(); err != nil {
				log.Fatal(err)
			}
		}()
	}
	wg.Wait()
	return d.Fed.Stats()
}
