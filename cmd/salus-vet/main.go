// Command salus-vet runs the Salus domain-specific static-analysis
// suite (internal/lint): the security and concurrency invariants the
// compiler cannot check — constant-time authentication compares,
// no blocking under a held mutex, gauge increment/decrement pairing,
// errors.Is discipline, the sealed host↔CL boundary, and the no-sleep
// test discipline.
//
// Usage:
//
//	salus-vet [-json] [-rules ct-compare,...] [-v] [path ...]
//
// Paths default to the current directory and are walked recursively
// ("./..." is accepted and means the same). Exit status is 1 when any
// unsuppressed finding remains, 2 on usage or load errors.
//
// Findings are suppressed in source with
//
//	//lint:allow <rule> <reason>
//
// on the offending line or the line above; the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"salus/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("salus-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (machine-readable, includes suppressed findings)")
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	verbose := fs.Bool("v", false, "also print suppressed findings with their reasons")
	list := fs.Bool("list", false, "list the rules and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *rules != "" {
		want := map[string]bool{}
		for _, r := range strings.Split(*rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var picked []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				picked = append(picked, a)
				delete(want, a.Name)
			}
		}
		for r := range want {
			fmt.Fprintf(stderr, "salus-vet: unknown rule %q (use -list)\n", r)
			return 2
		}
		analyzers = picked
	}

	roots := fs.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	// Annotation validation always knows the full rule set, so a
	// -rules subset run never misflags allows for the other rules.
	known := lint.Names(lint.All())
	var pkgs []*lint.Package
	for _, root := range roots {
		root = strings.TrimSuffix(root, "...")
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
		p, err := lint.LoadTree(root, known)
		if err != nil {
			fmt.Fprintf(stderr, "salus-vet: %v\n", err)
			return 2
		}
		pkgs = append(pkgs, p...)
	}

	diags := lint.Run(pkgs, analyzers)
	unsuppressed := lint.Unsuppressed(diags)

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "salus-vet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			if d.Suppressed {
				if *verbose {
					fmt.Fprintf(stdout, "%s [suppressed: %s]\n", d, d.Reason)
				}
				continue
			}
			fmt.Fprintln(stdout, d.String())
		}
		if len(unsuppressed) > 0 {
			fmt.Fprintf(stdout, "salus-vet: %d finding(s)\n", len(unsuppressed))
		}
	}
	if len(unsuppressed) > 0 {
		return 1
	}
	return 0
}
