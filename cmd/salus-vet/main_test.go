package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"salus/internal/lint"
)

// writeTree drops a small module-less source tree with one known
// finding and one suppressed finding.
func writeTree(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	src := `package p

import "errors"

var ErrX = errors.New("x")

func f(err error) bool {
	if err == ErrX { // the finding
		return true
	}
	//lint:allow sentinel-errors pinned: this path never wraps
	return err != ErrX
}
`
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestVetExitCodeAndText(t *testing.T) {
	dir := writeTree(t)
	var out, errb bytes.Buffer
	code := run([]string{dir}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "sentinel-errors") || !strings.Contains(out.String(), "a.go:8") {
		t.Fatalf("text output missing the finding:\n%s", out.String())
	}
	if strings.Contains(out.String(), "never wraps") {
		t.Fatalf("suppressed finding leaked into default output:\n%s", out.String())
	}
}

func TestVetJSONIncludesSuppressed(t *testing.T) {
	dir := writeTree(t)
	var out, errb bytes.Buffer
	code := run([]string{"-json", dir}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a diagnostic array: %v\n%s", err, out.String())
	}
	var open, suppressed int
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
			if d.Reason == "" {
				t.Errorf("suppressed JSON finding lost its reason: %+v", d)
			}
		} else {
			open++
		}
	}
	if open != 1 || suppressed != 1 {
		t.Fatalf("got %d open + %d suppressed findings, want 1 + 1:\n%s", open, suppressed, out.String())
	}
}

func TestVetCleanTreeExitsZero(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte("package p\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{dir}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d on a clean tree; out: %s", code, out.String())
	}
}

func TestVetRuleFilterAndList(t *testing.T) {
	dir := writeTree(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-rules", "ct-compare", dir}, &out, &errb); code != 0 {
		t.Fatalf("filtered run found something unexpected: %s", out.String())
	}
	out.Reset()
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatal("list failed")
	}
	for _, name := range lint.Names(lint.All()) {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list missing rule %s", name)
		}
	}
	if code := run([]string{"-rules", "no-such-rule", dir}, &out, &errb); code != 2 {
		t.Fatalf("unknown rule: exit = %d, want 2", code)
	}
}
