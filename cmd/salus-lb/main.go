// Command salus-lb hosts a federated Salus region on localhost: N shard
// gateways, each owning a disjoint FPGA pool behind its own scheduler,
// fronted by one federation tier that routes sessions on a consistent-hash
// ring (tenant + data-key keyed), spills them to the least-loaded sibling
// when their home shard saturates, and brokers the enclave-to-enclave
// data-key hand-off.
//
// The data owner attests ONLY the root shard — salus-lb writes the root's
// expectations to -exp, and cmd/salus-client's fleet/top subcommands work
// against the front tier unchanged. Every other shard in the region is
// keyed lazily by the sibling hand-off the first time the ring routes it
// work: O(1) owner attestation cost per region, not per shard.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"salus"
	"salus/internal/client"
	"salus/internal/federation"
	"salus/internal/remote"
	"salus/internal/sched"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("salus-lb: ")
	kernel := flag.String("kernel", "Conv", "benchmark kernel to deploy region-wide")
	addr := flag.String("addr", "127.0.0.1:7010", "federation front-tier address")
	expPath := flag.String("exp", "salus-expectations.json", "where to write the data owner's (root shard) expectations")
	shards := flag.Int("shards", 3, "number of shard gateways in the region")
	devices := flag.Int("devices", 2, "FPGA devices per shard")
	queue := flag.Int("queue", sched.DefaultQueueDepth, "per-device job queue depth")
	vnodes := flag.Int("vnodes", federation.DefaultVirtualNodes, "virtual nodes per shard on the routing ring")
	spillHigh := flag.Float64("spill-high", federation.DefaultSpillHighWater, "mean queued jobs per device at which a shard spills")
	tenantRate := flag.Float64("tenant-rate", 0, "sustained jobs/sec each tenant may submit (0 disables)")
	tenantBurst := flag.Float64("tenant-burst", 0, "per-tenant burst depth (0 defaults to -tenant-rate)")
	maxP99 := flag.Duration("max-p99", 0, "shed non-critical work when live p99 job latency exceeds this (0 disables)")
	statsEvery := flag.Duration("stats-interval", 0, "print the federation routing/shard snapshot every interval (0 disables)")
	flag.Parse()

	k, ok := salus.KernelByName(*kernel)
	if !ok {
		log.Fatalf("unknown kernel %q", *kernel)
	}
	d, err := federation.BuildLocal(federation.LocalSpec{
		Shards:          *shards,
		DevicesPerShard: *devices,
		Kernel:          k,
		Scheduler:       sched.Config{QueueDepth: *queue},
		Federation: federation.Config{
			VirtualNodes:   *vnodes,
			SpillHighWater: *spillHigh,
		},
		RemoteHandshake: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	var gwOpts []remote.GatewayOption
	if *tenantRate > 0 || *maxP99 > 0 {
		adm := remote.NewAdmission(remote.AdmissionConfig{
			TenantRate:  *tenantRate,
			TenantBurst: *tenantBurst,
			MaxP99:      *maxP99,
		})
		gwOpts = append(gwOpts, remote.WithAdmission(adm))
		fmt.Printf("admission control:  tenant-rate=%g/s burst=%g max-p99=%v\n", *tenantRate, *tenantBurst, *maxP99)
	}
	srv, bound, err := remote.ServeFederation(d.Fed, d.RootSystems, *addr, gwOpts...)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("federation tier:    ", bound)
	fmt.Printf("region:              %d shards x %d devices, root %s, %d vnodes/shard, spill at %g queued/device\n",
		*shards, *devices, d.Fed.Root(), *vnodes, *spillHigh)

	exps := make([]client.Expectations, len(d.RootSystems))
	for i, sys := range d.RootSystems {
		exps[i] = sys.Expectations()
	}
	expJSON, err := json.MarshalIndent(exps, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*expPath, expJSON, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("expectations written:", *expPath, "(root shard only — the owner never attests the siblings)")

	stopStats := make(chan struct{})
	if *statsEvery > 0 {
		fmt.Println("stats every:        ", *statsEvery)
		go func() {
			t := time.NewTicker(*statsEvery)
			defer t.Stop()
			for {
				select {
				case <-stopStats:
					return
				case <-t.C:
					st := d.Fed.Stats()
					fmt.Printf("--- federation %s --- epoch=%d routed=%d spilled=%d handoffs=%d\n",
						time.Now().Format(time.TimeOnly), st.Epoch, st.Routed, st.Spilled, st.Handoffs)
					for _, sh := range st.Shards {
						fmt.Printf("  %-6s devices=%d queued=%d pressure=%.2f keyed=%v root=%v\n",
							sh.ID, sh.Devices, sh.Queued, sh.Pressure, sh.Keyed, sh.Root)
					}
				}
			}
		}()
	}

	fmt.Println("waiting for a data owner — Ctrl-C to stop")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	close(stopStats)
	fmt.Println("\nshutting down")
}
