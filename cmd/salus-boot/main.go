// Command salus-boot runs the full Salus secure CL booting flow
// (Figure 3 ①–⑧) and prints the booting-time breakdown of the paper's
// Figure 9 (§6.3).
//
// With -device u200 (the default) it operates on a real ~32 MiB partial
// bitstream under the calibrated timing model; -device test boots a small
// bitstream with timing disabled, for a quick functional demonstration.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"salus"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("salus-boot: ")
	kernel := flag.String("kernel", "Conv", "benchmark kernel: Conv, Affine, Rendering, FaceDetect, NNSearch")
	device := flag.String("device", "u200", "device profile: u200 (Figure 9 scale) or test (fast)")
	csvPath := flag.String("csv", "", "also write the phase breakdown as CSV to this file")
	flag.Parse()

	switch *device {
	case "u200":
		fmt.Printf("Booting %s CL on %s (real %d-frame partial bitstream, calibrated timing)...\n\n",
			*kernel, salus.U200.Name, salus.U200.FramesPerSLR)
		r, err := salus.RunFigure9(*kernel)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(salus.FormatFigure9(r))
		if *csvPath != "" {
			f, err := os.Create(*csvPath)
			if err != nil {
				log.Fatal(err)
			}
			if err := r.Trace.WriteCSV(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Println("CSV breakdown written:", *csvPath)
		}

	case "test":
		k, ok := salus.KernelByName(*kernel)
		if !ok {
			log.Fatalf("unknown kernel %q", *kernel)
		}
		sys, err := salus.NewSystem(salus.SystemConfig{Kernel: k, Timing: salus.FastTiming()})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sys.SecureBoot()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("secure boot complete: CL %q attested on device %s\n", sys.Package.DesignName, rep.Result.DNA)
		fmt.Printf("bitstream digest H: %x\n", rep.Result.Digest[:16])
		fmt.Printf("user enclave quote: MRENCLAVE %s, chained report data %x...\n",
			rep.Quote.MRENCLAVE, rep.Quote.ReportData[:8])
		w, _ := salus.TestWorkload(*kernel, 1)
		out, err := sys.RunJob(w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("offloaded one %s job through the attested channel: %d output bytes\n", *kernel, len(out))

	default:
		log.Fatalf("unknown device %q (want u200 or test)", *device)
	}
}
