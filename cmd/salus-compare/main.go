// Command salus-compare regenerates Table 1 of the paper — the comparison
// with existing FPGA TEE designs — as an *executable* table: each row's
// properties are derived by running the implemented baseline mechanisms
// (the SGX-FPGA-style PUF root of trust and the ShEF-style device-key
// attestation chain) alongside Salus itself.
package main

import (
	"fmt"
	"log"

	"salus/internal/compare"
)

func main() {
	log.SetFlags(0)
	fmt.Println("Table 1 — comparison with existing FPGA TEE works (properties demonstrated, not asserted)")
	fmt.Println()
	rows, err := compare.RunTable1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(compare.FormatTable1(rows))
	fmt.Println("HE = heterogeneous CPU-FPGA TEE, SA = standalone FPGA TEE")
}
