// Package salus is a pure-Go reproduction of "Salus: A Practical Trusted
// Execution Environment for CPU-FPGA Heterogeneous Cloud Platforms"
// (ASPLOS 2024): a TEE for commercial-off-the-shelf cloud FPGAs that needs
// no extra root-of-trust hardware. A Secure Manager (SM) enclave on a
// TEE-enabled host injects a freshly generated attestation key into the
// custom-logic bitstream via bitstream manipulation, encrypts it under the
// per-device key obtained from the manufacturer's key-distribution service,
// deploys it through the untrusted shell, attests the loaded logic with a
// light-weight symmetric challenge/response, and chains everything into a
// single cascaded attestation the data owner verifies in one round trip.
//
// Because both SGX and cloud FPGAs are hardware-gated, every substrate is
// simulated in software with matching protocol-visible behaviour — see
// DESIGN.md for the substitution table. The public API assembles a full
// deployment:
//
//	sys, err := salus.NewSystem(salus.SystemConfig{Kernel: salus.Conv{}})
//	report, err := sys.SecureBoot()      // Figure 3 ①–⑧
//	out, err := sys.RunJob(workload)     // §4.5 secure offload
//
// The cmd/ binaries regenerate every table and figure of the paper's
// evaluation; EXPERIMENTS.md records paper-vs-measured values.
package salus

import (
	"salus/internal/accel"
	"salus/internal/client"
	"salus/internal/core"
	"salus/internal/fpga"
	"salus/internal/netlist"
	"salus/internal/perfmodel"
	"salus/internal/sgx"
	"salus/internal/shell"
	"salus/internal/smapp"
)

// --- Deployment assembly ----------------------------------------------------

// SystemConfig configures a deployment; see core.SystemConfig.
type SystemConfig = core.SystemConfig

// System is an assembled cloud FPGA instance: manufacturer, TEE host,
// device, shell, and both enclave applications.
type System = core.System

// BootReport is the outcome of a secure boot, including the deferred quote.
type BootReport = core.BootReport

// NewSystem manufactures and assembles a deployment.
func NewSystem(cfg SystemConfig) (*System, error) { return core.NewSystem(cfg) }

// MultiRPSystem is the §4.7 extension: several reconfigurable partitions
// behind a master SM enclave with per-partition agents.
type MultiRPSystem = core.MultiRPSystem

// NewMultiRPSystem assembles a multi-partition deployment.
func NewMultiRPSystem(profile DeviceProfile, dna DNA, kernels []Kernel, timing Timing) (*MultiRPSystem, error) {
	return core.NewMultiRPSystem(profile, dna, kernels, timing)
}

// --- Developer flow -----------------------------------------------------------

// CLPackage is a compiled custom logic: bitstream, digest H, Loc_Keyattest.
type CLPackage = core.CLPackage

// DevelopCL runs the development flow of §4.2 for a kernel.
func DevelopCL(k Kernel, profile DeviceProfile, seed int64) (*CLPackage, error) {
	return core.DevelopCL(k, profile, seed)
}

// DevelopProtectedCL builds the CL variant whose accelerator integrates a
// memory integrity tree at its DRAM interface (§3.1 attack-2 defence).
func DevelopProtectedCL(k Kernel, profile DeviceProfile, seed int64) (*CLPackage, error) {
	return core.DevelopProtectedCL(k, profile, seed)
}

// --- Kernels and workloads -----------------------------------------------------

// Kernel is a benchmark accelerator (Table 4).
type Kernel = accel.Kernel

// Workload is a ready-to-run job.
type Workload = accel.Workload

// The five benchmark kernels.
type (
	// Conv is the single-convolution-layer benchmark.
	Conv = accel.Conv
	// Affine is the image affine-transformation benchmark.
	Affine = accel.Affine
	// Rendering is the 3-D rendering benchmark.
	Rendering = accel.Rendering
	// FaceDetect is the Viola-Jones face detection benchmark.
	FaceDetect = accel.FaceDetect
	// NNSearch is the nearest-neighbour search benchmark.
	NNSearch = accel.NNSearch
)

// Kernels returns the five benchmark kernels in Table 4 order.
func Kernels() []Kernel { return accel.Kernels() }

// KernelByName looks a kernel up by its Table 4 name.
func KernelByName(name string) (Kernel, bool) { return accel.KernelByName(name) }

// PaperWorkload builds the paper-scale workload for a kernel name.
func PaperWorkload(name string, seed int64) (Workload, bool) { return accel.PaperWorkload(name, seed) }

// TestWorkload builds a small, fast workload for a kernel name.
func TestWorkload(name string, seed int64) (Workload, bool) { return accel.TestWorkload(name, seed) }

// --- Devices -------------------------------------------------------------------

// DeviceProfile describes device geometry and resources.
type DeviceProfile = netlist.DeviceProfile

// DNA is a device's unique factory identifier.
type DNA = fpga.DNA

// Device profiles.
var (
	// U200 models the Alveo U200 of the paper's prototype.
	U200 = netlist.U200
	// U250 models the larger sibling (portability: Salus is not
	// device-bound).
	U250 = netlist.U250
	// TestDevice is a small-bitstream profile for fast experiments.
	TestDevice = netlist.TestDevice
)

// U200Floorplan reproduces Figure 8.
func U200Floorplan() netlist.Floorplan { return netlist.U200Floorplan() }

// --- Timing and experiments -----------------------------------------------------

// Timing is the boot-time model; see EXPERIMENTS.md for calibration.
type Timing = core.Timing

// DefaultTiming is the Figure 9 calibration.
func DefaultTiming() Timing { return core.DefaultTiming() }

// FastTiming disables timing simulation (tests, quick demos).
func FastTiming() Timing { return core.FastTiming() }

// Figure9Result is the booting-time experiment outcome.
type Figure9Result = core.Figure9Result

// RunFigure9 regenerates the §6.3 booting-time experiment at U200 scale.
func RunFigure9(kernelName string) (*Figure9Result, error) { return core.RunFigure9(kernelName) }

// FormatFigure9 renders the breakdown next to the paper's values.
func FormatFigure9(r *Figure9Result) string { return core.FormatFigure9(r) }

// Table3Row is one adversarial scenario's outcome.
type Table3Row = core.Table3Row

// RunTable3 launches every threat-model attack against live deployments
// and reports where each was stopped (Table 3 / §4.6).
func RunTable3() []Table3Row { return core.RunTable3() }

// FormatTable3 renders the protection matrix.
func FormatTable3(rows []Table3Row) string { return core.FormatTable3(rows) }

// PerfConstants are the §6.4 runtime-model overhead terms.
type PerfConstants = perfmodel.Constants

// DefaultPerfConstants is the Table 6 calibration.
func DefaultPerfConstants() PerfConstants { return perfmodel.DefaultConstants() }

// Table6 computes the TEE-slowdown table for all benchmarks.
func Table6(c PerfConstants) []perfmodel.Slowdown { return perfmodel.Table6(c) }

// Figure10 computes the Salus-over-SGX speedups.
func Figure10(c PerfConstants) []perfmodel.SpeedupRow { return perfmodel.Figure10(c) }

// FormatTable6 renders Table 6.
func FormatTable6(rows []perfmodel.Slowdown) string { return perfmodel.FormatTable6(rows) }

// FormatFigure10 renders Figure 10.
func FormatFigure10(rows []perfmodel.SpeedupRow) string { return perfmodel.FormatFigure10(rows) }

// --- Verification (data owner side) ----------------------------------------------

// Expectations pin the identities the data owner verifies against.
type Expectations = client.Expectations

// Verifier is the data owner's attestation checker.
type Verifier = client.Verifier

// NewVerifier creates a data-owner verifier.
func NewVerifier(exp Expectations) *Verifier { return client.New(exp) }

// Quote is a remote attestation quote.
type Quote = sgx.Quote

// Measurement is an enclave measurement (MRENCLAVE).
type Measurement = sgx.Measurement

// --- Adversary toolkit (attack experiments) ---------------------------------------

// Interceptor is the hook a compromised shell uses on mediated traffic.
type Interceptor = shell.Interceptor

// Attack interceptors; see internal/shell/attacks.go and Table 3.
type (
	// SubstituteCL replaces loaded bitstreams with the attacker's own.
	SubstituteCL = shell.SubstituteCL
	// TamperBits flips a bit in every loaded bitstream.
	TamperBits = shell.TamperBits
	// TamperRequests corrupts host→CL transactions.
	TamperRequests = shell.TamperRequests
	// TamperResponses corrupts CL→host responses.
	TamperResponses = shell.TamperResponses
	// ReplayRequests replays recorded secure-channel frames.
	ReplayRequests = shell.ReplayRequests
	// ForgeAttestation fabricates CL attestation responses without the key.
	ForgeAttestation = shell.ForgeAttestation
	// SpoofDNA rewrites the device identity in attestation responses.
	SpoofDNA = shell.SpoofDNA
)

// WithReadbackEnabled manufactures a legacy device whose ICAP still allows
// configuration readback — the §5.1.2 ablation.
func WithReadbackEnabled() fpga.Option { return fpga.WithReadbackEnabled() }

// ErrCLAttestation is returned when the loaded CL fails attestation.
var ErrCLAttestation = smapp.ErrCLAttestation
