// Benchmark harness: one bench (or bench family) per table and figure of
// the paper's evaluation, plus the design-choice ablations called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Figure/table mapping:
//
//	BenchmarkFigure9*    — §6.3 booting time (U200-scale bitstream ops)
//	BenchmarkTable5*     — §6.2 implementation/resource accounting
//	BenchmarkFigure10*   — §6.4 workload execution (real kernels)
//	BenchmarkTable6*     — §6.4 TEE slowdown model
//	BenchmarkFigure4a*   — CL attestation protocol
//	BenchmarkFigure4b*   — cascaded attestation (full boot, fast timing)
//	BenchmarkAblation*   — design-choice ablations
package salus_test

import (
	"crypto/ed25519"
	"crypto/rand"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fmt"
	"salus"
	"salus/internal/accel"
	"salus/internal/bitman"
	"salus/internal/bitstream"
	"salus/internal/channel"

	"salus/internal/core"
	"salus/internal/cryptoutil"
	"salus/internal/fleet"
	"salus/internal/fpga"
	"salus/internal/metrics"
	"salus/internal/netlist"
	"salus/internal/perfmodel"
	"salus/internal/sched"
	"salus/internal/siphash"
	"salus/internal/smlogic"
)

// --- Figure 9: booting time ---------------------------------------------------

// BenchmarkFigure9SecureBootU200 runs the complete secure CL booting flow
// on a real ~32 MiB partial bitstream under the calibrated timing model.
// The reported wall time is the real compute; the virtual breakdown is
// printed by cmd/salus-boot.
func BenchmarkFigure9SecureBootU200(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := salus.RunFigure9("Conv")
		if err != nil {
			b.Fatal(err)
		}
		if !r.Report.Result.Attested {
			b.Fatal("boot did not attest")
		}
	}
}

func u200Package(b *testing.B) *core.CLPackage {
	b.Helper()
	pkg, err := core.DevelopCL(accel.Conv{}, netlist.U200, 1)
	if err != nil {
		b.Fatal(err)
	}
	return pkg
}

// BenchmarkFigure9BitstreamManipulation is the dominant boot phase: full
// parse, RoT injection, re-serialisation of the U200-scale bitstream.
func BenchmarkFigure9BitstreamManipulation(b *testing.B) {
	pkg := u200Package(b)
	secret := make([]byte, smlogic.SecretsSize)
	b.SetBytes(int64(len(pkg.Encoded)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tool, err := bitman.Open(pkg.Encoded)
		if err != nil {
			b.Fatal(err)
		}
		if err := tool.Inject(pkg.Loc, 0, secret); err != nil {
			b.Fatal(err)
		}
		if out := tool.Serialize(); len(out) == 0 {
			b.Fatal("empty serialisation")
		}
	}
}

// BenchmarkFigure9BitstreamVerify is the digest check (⑤a).
func BenchmarkFigure9BitstreamVerify(b *testing.B) {
	pkg := u200Package(b)
	b.SetBytes(int64(len(pkg.Encoded)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cryptoutil.Digest(pkg.Encoded) != pkg.Digest {
			b.Fatal("digest mismatch")
		}
	}
}

// BenchmarkFigure9BitstreamEncrypt is the AES-GCM-256 sealing (⑤c).
func BenchmarkFigure9BitstreamEncrypt(b *testing.B) {
	pkg := u200Package(b)
	key := cryptoutil.RandomKey(cryptoutil.DeviceKeySize)
	b.SetBytes(int64(len(pkg.Encoded)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bitstream.Encrypt(pkg.Encoded, key, netlist.U200.Name); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 5: implementation/resource accounting --------------------------------

// BenchmarkTable5DevelopCL measures the developer flow (integrate SM logic,
// implement, assemble bitstream, record H and Loc) per benchmark.
func BenchmarkTable5DevelopCL(b *testing.B) {
	for _, k := range accel.Kernels() {
		k := k
		b.Run(k.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.DevelopCL(k, netlist.TestDevice, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 10 / Table 6: workload execution ------------------------------------

// BenchmarkFigure10Kernels really executes each benchmark kernel at paper
// scale, plain and with the TEE's traffic encryption.
func BenchmarkFigure10Kernels(b *testing.B) {
	for _, k := range accel.Kernels() {
		k := k
		w, ok := accel.PaperWorkload(k.Name(), 1)
		if !ok {
			b.Fatalf("no workload for %s", k.Name())
		}
		b.Run(k.Name()+"/plain", func(b *testing.B) {
			b.SetBytes(int64(len(w.Input)))
			for i := 0; i < b.N; i++ {
				if _, err := perfmodel.MeasureCPU(k, w, false); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(k.Name()+"/tee", func(b *testing.B) {
			b.SetBytes(int64(len(w.Input)))
			for i := 0; i < b.N; i++ {
				if _, err := perfmodel.MeasureCPU(k, w, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable6Model evaluates the analytic slowdown model (cheap; the
// point is regression: the calibrated rows must keep their shape).
func BenchmarkTable6Model(b *testing.B) {
	c := perfmodel.DefaultConstants()
	for i := 0; i < b.N; i++ {
		rows := perfmodel.Table6(c)
		if len(rows) != 5 {
			b.Fatal("missing rows")
		}
	}
}

// --- Figure 4a / 4b: attestation protocols ---------------------------------------

// BenchmarkFigure4aCLAttestation measures one symmetric challenge/response
// against a loaded CL through the shell (§6.3 reports 1.3 ms including
// PCIe; this is the pure compute path).
func BenchmarkFigure4aCLAttestation(b *testing.B) {
	sys, err := salus.NewSystem(salus.SystemConfig{Kernel: salus.Conv{}, Timing: salus.FastTiming()})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sys.SecureBoot(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.SM.AttestCL(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4bCascadedAttestation measures a complete secure boot with
// cascaded attestation on the small device profile (no timing model): all
// protocol crypto, bitstream work, and verification, end to end.
func BenchmarkFigure4bCascadedAttestation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := salus.NewSystem(salus.SystemConfig{Kernel: salus.Conv{}, Timing: salus.FastTiming(), Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.SecureBoot(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSecureRegisterChannel measures one protected register
// transaction through SM enclave + shell + SM logic (§4.5).
func BenchmarkSecureRegisterChannel(b *testing.B) {
	sys, err := salus.NewSystem(salus.SystemConfig{Kernel: salus.Conv{}, Timing: salus.FastTiming()})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sys.SecureBoot(); err != nil {
		b.Fatal(err)
	}
	txn := channel.RegTxn{Write: true, Addr: accel.RegParam0, Data: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.User.SecureReg(txn); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ---------------------------------------------------------------------

// BenchmarkAblationAttestationScheme compares Salus's symmetric CL
// attestation MAC against the PKE round a ShEF-style remote attestation
// would pay per challenge (signature + verification), justifying Solution 2.
func BenchmarkAblationAttestationScheme(b *testing.B) {
	msg := make([]byte, 64)
	key := cryptoutil.RandomKey(16)

	b.Run("salus-symmetric-siphash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mac := siphash.Sum64(key, msg)
			if !siphash.Verify(key, msg, mac) {
				b.Fatal("verify failed")
			}
		}
	})

	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("shef-style-pke", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sig := ed25519.Sign(priv, msg)
			if !ed25519.Verify(pub, msg, sig) {
				b.Fatal("verify failed")
			}
		}
	})
}

// BenchmarkAblationMACEngine compares the SM logic's MAC options: SipHash
// (chosen — light-weight ARX, small hardware footprint), HMAC-SHA256, and
// AES-CMAC, over attestation-sized messages.
func BenchmarkAblationMACEngine(b *testing.B) {
	msg := make([]byte, 64)
	key16 := cryptoutil.RandomKey(16)
	key32 := cryptoutil.RandomKey(32)
	b.Run("siphash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			siphash.Sum64(key16, msg)
		}
	})
	b.Run("hmac-sha256", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cryptoutil.HMAC256(key32, msg)
		}
	})
	b.Run("aes-cmac", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cryptoutil.CMAC(key16, msg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationInjectionPath compares dynamic RoT injection by
// bitstream manipulation (Salus) against regenerating the bitstream from a
// re-implemented netlist (the naive hard-code-and-recompile path — and the
// simulated "recompile" is *charitable*: real place-and-route takes hours,
// not the milliseconds of our placement model).
func BenchmarkAblationInjectionPath(b *testing.B) {
	pkg, err := core.DevelopCL(accel.Conv{}, netlist.TestDevice, 5)
	if err != nil {
		b.Fatal(err)
	}
	secret := make([]byte, smlogic.SecretsSize)

	b.Run("salus-manipulation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tool, err := bitman.Open(pkg.Encoded)
			if err != nil {
				b.Fatal(err)
			}
			if err := tool.Inject(pkg.Loc, 0, secret); err != nil {
				b.Fatal(err)
			}
			tool.Serialize()
		}
	})
	b.Run("recompile-lower-bound", func(b *testing.B) {
		design, err := smlogic.Integrate("conv_cl", accel.Conv{}.Module())
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			pl, err := netlist.Implement(design, netlist.TestDevice, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			im := bitstream.FromPlaced(pl, "salus-cl/Conv")
			if err := smlogic.InjectSecrets(im, secret[:16], secret[16:32], 0); err != nil {
				b.Fatal(err)
			}
			im.Encode()
		}
	})
}

// BenchmarkAblationLocalVsRemoteUserAttestation compares the in-host local
// attestation (836 µs in the paper) against a full quote generation +
// verification round (what chaining via remote attestation would cost).
func BenchmarkAblationLocalVsRemoteUserAttestation(b *testing.B) {
	sys, err := salus.NewSystem(salus.SystemConfig{Kernel: salus.Conv{}, Timing: salus.FastTiming()})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("local-attestation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := sys.User.LocalAttestSM(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("remote-attestation-quote", func(b *testing.B) {
		exp := sys.Expectations()
		_ = exp
		for i := 0; i < b.N; i++ {
			q := sys.User.GenerateUnchainedQuote([]byte("nonce"), 0)
			if q.MRENCLAVE != sys.User.Measurement() {
				b.Fatal("bad quote")
			}
		}
	})
}

// BenchmarkAblationBitstreamScale quantifies §6.3's claim that bitstream
// operation time depends only on the reserved partition area: manipulation
// throughput across partition sizes is flat (time grows linearly with
// frames), regardless of the accelerator inside.
func BenchmarkAblationBitstreamScale(b *testing.B) {
	for _, frames := range []int{1024, 4096, 16384} {
		profile := netlist.TestDevice
		profile.Name = "xcscale"
		profile.FramesPerSLR = frames
		pkg, err := core.DevelopCL(accel.Conv{}, profile, 1)
		if err != nil {
			b.Fatal(err)
		}
		secret := make([]byte, smlogic.SecretsSize)
		b.Run(fmt.Sprintf("frames-%d", frames), func(b *testing.B) {
			b.SetBytes(int64(len(pkg.Encoded)))
			for i := 0; i < b.N; i++ {
				tool, err := bitman.Open(pkg.Encoded)
				if err != nil {
					b.Fatal(err)
				}
				if err := tool.Inject(pkg.Loc, 0, secret); err != nil {
					b.Fatal(err)
				}
				tool.Serialize()
			}
		})
	}
}

// BenchmarkTable4SizeInvariance verifies the §6.3 footnote: the partial
// bitstream size is identical across all five accelerators because it is
// fixed by the floor plan, not the logic.
func BenchmarkTable4SizeInvariance(b *testing.B) {
	// The configuration payload (frames x frame bytes) must be identical
	// across kernels; the container header varies only by the design-name
	// string length.
	payload := map[string]int{}
	encoded := map[string]int{}
	for _, k := range accel.Kernels() {
		pkg, err := core.DevelopCL(k, netlist.TestDevice, 1)
		if err != nil {
			b.Fatal(err)
		}
		im, err := bitstream.Decode(pkg.Encoded)
		if err != nil {
			b.Fatal(err)
		}
		payload[k.Name()] = im.Frames() * im.Header.FrameWords * 4
		encoded[k.Name()] = len(pkg.Encoded)
	}
	first := -1
	for name, n := range payload {
		if first < 0 {
			first = n
		}
		if n != first {
			b.Fatalf("%s config payload %d bytes != %d — must be logic-independent", name, n, first)
		}
	}
	minE, maxE := 1<<62, 0
	for _, n := range encoded {
		if n < minE {
			minE = n
		}
		if n > maxE {
			maxE = n
		}
	}
	if maxE-minE > 128 {
		b.Fatalf("encoded sizes spread %d bytes — more than header naming can explain", maxE-minE)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = payload
	}
}

// --- Scheduler: multi-device aggregate throughput -----------------------------

// benchPool boots n Conv systems sharing one data key.
func benchPool(b *testing.B, n int) []*core.System {
	b.Helper()
	// A physical U200 keeps the host idle-blocked ~2 ms per Conv job
	// (DMA + fabric run); that idle time is what the scheduler overlaps
	// across boards.
	timing := core.FastTiming()
	timing.RealJobLatency = 2 * time.Millisecond
	systems := make([]*core.System, n)
	for i := range systems {
		sys, err := core.NewSystem(core.SystemConfig{
			Kernel: accel.Conv{},
			Seed:   int64(900 + i),
			DNA:    fpga.DNA(fmt.Sprintf("BENCH-%02d", i)),
			Timing: timing,
		})
		if err != nil {
			b.Fatal(err)
		}
		systems[i] = sys
	}
	if _, err := sched.BootShared(systems); err != nil {
		b.Fatal(err)
	}
	return systems
}

// BenchmarkSchedulerThroughput measures aggregate jobs/sec of the sched
// pool against a serial RunJob loop on one device (serial-baseline). The
// workload is large enough that per-job compute — kernel + AES-CTR —
// dominates dispatch, as on a real multi-board host. Jobs/op is 1, so
// ns/op is the per-job latency at full pipeline occupancy; compare
// serial-baseline ns/op to devices-N ns/op for the speedup.
func BenchmarkSchedulerThroughput(b *testing.B) {
	w := accel.GenConv(32, 32, 4, 1)

	b.Run("serial-baseline", func(b *testing.B) {
		sys := benchPool(b, 1)[0]
		b.SetBytes(int64(len(w.Input)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.RunJob(w); err != nil {
				b.Fatal(err)
			}
		}
	})

	runPool := func(b *testing.B, n int) {
		s := sched.New(sched.Config{})
		for _, sys := range benchPool(b, n) {
			if err := s.Register(sys); err != nil {
				b.Fatal(err)
			}
		}
		defer s.Close()
		b.SetBytes(int64(len(w.Input)))
		b.ResetTimer()
		futs := make([]*sched.Future, b.N)
		for i := range futs {
			futs[i] = s.Submit(w)
		}
		for i, f := range futs {
			if _, err := f.Wait(); err != nil {
				b.Fatalf("job %d: %v", i, err)
			}
		}
	}
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("devices-%d", n), func(b *testing.B) { runPool(b, n) })
	}
	// The observability acceptance gate: the same pool with the metrics
	// registry disabled. Compare devices-2 against this to price the
	// instrumentation on the job hot path (<3% is the budget).
	b.Run("devices-2-metrics-disabled", func(b *testing.B) {
		metrics.Default().SetEnabled(false)
		defer metrics.Default().SetEnabled(true)
		runPool(b, 2)
	})
}

// benchInjector is a switchable broken shell for the degraded-pool bench:
// once broken it corrupts every direct-channel frame, so jobs on its device
// fail with core.ErrDeviceFault while the secure register channel stays in
// sync (the device boots cleanly before the fault is switched on).
type benchInjector struct{ broken atomic.Bool }

func (f *benchInjector) OnLoad(data []byte) []byte  { return data }
func (f *benchInjector) OnResponse(b []byte) []byte { return b }
func (f *benchInjector) OnRequest(req []byte) []byte {
	if !f.broken.Load() {
		return req
	}
	switch channel.MsgType(req) {
	case channel.MsgDirectReg, channel.MsgMemWrite, channel.MsgMemRead:
		return []byte{0xFF}
	}
	return req
}

// BenchmarkSchedulerDegradedPool measures aggregate throughput of a pool
// with one permanently faulted device against the healthy pool one board
// smaller. The circuit breaker is what keeps the two close: without
// quarantine, least-loaded routing funnels jobs into the fast-failing
// board and every one of them burns a retry. Compare degraded-3 ns/op to
// healthy-2 ns/op — the gap is the cost of fault detection + re-dispatch.
func BenchmarkSchedulerDegradedPool(b *testing.B) {
	w := accel.GenConv(32, 32, 4, 1)

	run := func(b *testing.B, systems []*core.System) {
		s := sched.New(sched.Config{QuarantineAfter: 2})
		for _, sys := range systems {
			if err := s.Register(sys); err != nil {
				b.Fatal(err)
			}
		}
		defer s.Close()
		b.SetBytes(int64(len(w.Input)))
		b.ResetTimer()
		futs := make([]*sched.Future, b.N)
		for i := range futs {
			futs[i] = s.Submit(w)
		}
		for i, f := range futs {
			if _, err := f.Wait(); err != nil {
				b.Fatalf("job %d: %v", i, err)
			}
		}
	}

	b.Run("healthy-2", func(b *testing.B) {
		run(b, benchPool(b, 2))
	})

	b.Run("degraded-3-one-broken", func(b *testing.B) {
		inj := &benchInjector{}
		timing := core.FastTiming()
		timing.RealJobLatency = 2 * time.Millisecond
		systems := make([]*core.System, 3)
		for i := range systems {
			cfg := core.SystemConfig{
				Kernel: accel.Conv{},
				Seed:   int64(950 + i),
				DNA:    fpga.DNA(fmt.Sprintf("DEGR-%02d", i)),
				Timing: timing,
			}
			if i == 0 {
				cfg.Interceptor = inj
			}
			sys, err := core.NewSystem(cfg)
			if err != nil {
				b.Fatal(err)
			}
			systems[i] = sys
		}
		if _, err := sched.BootShared(systems); err != nil {
			b.Fatal(err)
		}
		inj.broken.Store(true) // boots clean, then the board dies for good
		run(b, systems)
	})
}

// --- Batched data path --------------------------------------------------------

// batchedBenchJobs is the batch size one benchmark op carries: large enough
// to amortise the per-frame costs the batch exists to amortise, small
// enough that an op stays well under a chunk (409 jobs) and memory stays
// bounded at any benchtime.
const batchedBenchJobs = 64

// benchBatchedDevice runs one 64-job batch per op through SubmitBatch on
// an n-device pool; MB/s is plaintext input bytes.
func benchBatchedDevice(b *testing.B, n int) {
	w := accel.GenConv(32, 32, 4, 1)
	s := sched.New(sched.Config{})
	for _, sys := range benchPool(b, n) {
		if err := s.Register(sys); err != nil {
			b.Fatal(err)
		}
	}
	defer s.Close()
	ws := make([]accel.Workload, batchedBenchJobs)
	for i := range ws {
		ws[i] = w
	}
	b.SetBytes(int64(batchedBenchJobs * len(w.Input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, f := range s.SubmitBatch(ws) {
			if _, err := f.Wait(); err != nil {
				b.Fatalf("job %d: %v", j, err)
			}
		}
	}
}

// benchBatchedSingleDevice is the gate's subject: the batched path on the
// same single-device pool the 6.5 MB/s unbatched baseline was measured on.
func benchBatchedSingleDevice(b *testing.B) { benchBatchedDevice(b, 1) }

// BenchmarkBatchedThroughput is the batched-vs-unbatched comparison on
// identical pools and workloads: each op moves the same 64 jobs, once as 64
// Submit round trips (64 sealed register frames per job program, one DMA
// write and read per job) and once as one SubmitBatch (one sealed frame per
// chunk, pipelined DMA). ns/op and MB/s are directly comparable across the
// sub-benchmarks.
func BenchmarkBatchedThroughput(b *testing.B) {
	w := accel.GenConv(32, 32, 4, 1)

	b.Run("unbatched-1dev", func(b *testing.B) {
		s := sched.New(sched.Config{})
		if err := s.Register(benchPool(b, 1)[0]); err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		b.SetBytes(int64(batchedBenchJobs * len(w.Input)))
		b.ResetTimer()
		futs := make([]*sched.Future, batchedBenchJobs)
		for i := 0; i < b.N; i++ {
			for j := range futs {
				futs[j] = s.Submit(w)
			}
			for j, f := range futs {
				if _, err := f.Wait(); err != nil {
					b.Fatalf("job %d: %v", j, err)
				}
			}
		}
	})
	b.Run("batched-1dev", func(b *testing.B) { benchBatchedDevice(b, 1) })
	b.Run("batched-2dev", func(b *testing.B) { benchBatchedDevice(b, 2) })
}

// TestBatchedThroughputGate is the bench-sched acceptance gate: with
// SALUS_BENCH_SMOKE=1 it measures the batched single-device path and fails
// unless it clears 5x the 6.5 MB/s unbatched single-device baseline
// (RESULTS.md), and unless the pooled batch seal/open hot path runs
// allocation-free. Skipped in ordinary test runs — wall-clock assertions do
// not belong in `go test ./...`.
func TestBatchedThroughputGate(t *testing.T) {
	if os.Getenv("SALUS_BENCH_SMOKE") == "" {
		t.Skip("set SALUS_BENCH_SMOKE=1 (make bench-sched) to run the batched throughput gate")
	}

	const baselineMBs = 6.5
	res := testing.Benchmark(benchBatchedSingleDevice)
	mbs := float64(res.Bytes) * float64(res.N) / res.T.Seconds() / 1e6
	t.Logf("batched single-device: %.1f MB/s (unbatched baseline %.1f MB/s, %.1fx)", mbs, baselineMBs, mbs/baselineMBs)
	if mbs < 5*baselineMBs {
		t.Fatalf("batched path moves %.1f MB/s, gate is 5x the %.1f MB/s baseline", mbs, baselineMBs)
	}

	// The zero-copy claim, pinned: sealing and opening a warm batch frame in
	// both directions must not allocate.
	key := cryptoutil.RandomKey(16)
	host, err := channel.NewSealer(key)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := channel.NewSealer(key)
	if err != nil {
		t.Fatal(err)
	}
	txns := make([]channel.RegTxn, 24)
	for i := range txns {
		txns[i] = channel.RegTxn{Write: true, Addr: accel.RegParam0, Data: uint64(i)}
	}
	dst := make([]channel.RegTxn, 0, len(txns))
	ctr := uint64(0)
	roundTrip := func() {
		frame, err := host.SealRegBatchRequest(ctr, txns)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dev.OpenRegBatchRequest(ctr, frame, dst[:0]); err != nil {
			t.Fatal(err)
		}
		ctr++
	}
	roundTrip() // warm the sealer scratch
	if allocs := testing.AllocsPerRun(100, roundTrip); allocs != 0 {
		t.Fatalf("batch seal/open allocates %.0f objects/op, want 0", allocs)
	}
}

// --- Elastic fleet -----------------------------------------------------------

// newBenchFleet assembles a fleet manager for the boot benchmarks.
func newBenchFleet(b *testing.B, timing core.Timing) *fleet.Manager {
	b.Helper()
	m, err := fleet.New(fleet.Config{
		Kernel:    accel.Conv{},
		DNAPrefix: "BFLT",
		Timing:    timing,
	})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkFleetBoot compares booting 8 boards serially, in parallel
// without the shared caches, and through the fleet manager (parallel boot
// plus the prepared-bitstream cache and quote pool). RealBootLatency
// models the ~10 ms the host spends idle-blocked on the ICAP per board —
// the time parallel boot overlaps. The fleet variant also reports
// manipulations per 8-board boot: 1 means the toolchain ran once and the
// other seven boards hit the cache.
func BenchmarkFleetBoot(b *testing.B) {
	const k = 8
	timing := core.FastTiming()
	timing.RealBootLatency = 10 * time.Millisecond

	freshSystems := func(b *testing.B, gen int) []*core.System {
		systems := make([]*core.System, k)
		for i := range systems {
			sys, err := core.NewSystem(core.SystemConfig{
				Kernel: accel.Conv{},
				Seed:   1000,
				DNA:    fpga.DNA(fmt.Sprintf("BOOT-%03d-%02d", gen, i)),
				Timing: timing,
			})
			if err != nil {
				b.Fatal(err)
			}
			systems[i] = sys
		}
		return systems
	}

	b.Run("serial-8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			systems := freshSystems(b, i)
			b.StartTimer()
			if _, err := sched.BootShared(systems); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel-8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			systems := freshSystems(b, i)
			b.StartTimer()
			if _, err := sched.BootSharedParallel(systems); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fleet-parallel-cached-8", func(b *testing.B) {
		manips := 0
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			m := newBenchFleet(b, timing)
			b.StartTimer()
			if err := m.BootFleet(k); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			manips += m.PreparedStats().Manipulations
			m.Close()
			b.StartTimer()
		}
		b.ReportMetric(float64(manips)/float64(b.N), "manips/boot")
	})
}

// BenchmarkFleetHotAdd measures one grow-then-shrink cycle against a pool
// that is busy serving the whole time: every Add boots through the warm
// prepared cache while jobs keep flowing, and every Remove drains without
// losing one.
func BenchmarkFleetHotAdd(b *testing.B) {
	timing := core.FastTiming()
	timing.RealJobLatency = time.Millisecond
	m := newBenchFleet(b, timing)
	defer m.Close()
	if err := m.BootFleet(2); err != nil {
		b.Fatal(err)
	}

	w := accel.GenConv(32, 32, 4, 1)
	stop := make(chan struct{})
	var pumpErrs atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := m.Scheduler().Submit(w).Wait(); err != nil {
					pumpErrs.Add(1)
					return
				}
			}
		}()
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dna, err := m.Add()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Remove(dna); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	if n := pumpErrs.Load(); n > 0 {
		b.Fatalf("%d background jobs failed during scaling", n)
	}
}
